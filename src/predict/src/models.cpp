#include "hetscale/predict/models.hpp"

#include <algorithm>
#include <cmath>

#include "hetscale/numeric/linsolve.hpp"
#include "hetscale/numeric/roots.hpp"
#include "hetscale/predict/theory.hpp"
#include "hetscale/support/error.hpp"

namespace hetscale::predict {

namespace {
constexpr double kMetadataBytes = 16.0;
constexpr double kBytesPerDouble = 8.0;
}  // namespace

double CommModel::t_send(double bytes) const {
  return send_alpha_s + send_beta_s_per_byte * bytes;
}

double CommModel::t_bcast(int p, double bytes) const {
  if (p <= 1) return 0.0;
  return bcast_const_s + static_cast<double>(p - 1) *
                             (bcast_alpha_s + bcast_beta_s_per_byte * bytes);
}

double CommModel::t_bcast_large(int p, double bytes) const {
  if (p <= 1) return 0.0;
  return bcast_large_const_s +
         static_cast<double>(p - 1) * bcast_large_alpha_s +
         bcast_large_beta_s_per_byte * bytes;
}

double CommModel::t_barrier(int p) const {
  if (p <= 1) return 0.0;
  return barrier_const_s + static_cast<double>(p - 1) * barrier_unit_s;
}

double OverheadModel::sequential_time(double n,
                                      const SystemModel& system) const {
  HETSCALE_REQUIRE(system.root_speed > 0.0, "root speed must be positive");
  return sequential_flops(n) / system.root_speed;
}

// ---- GE ----

double GeOverheadModel::work(double n) const {
  return numeric::ge_workload(n);
}

double GeOverheadModel::sequential_flops(double n) const {
  return n * n;  // back substitution on process 0
}

double GeOverheadModel::overhead(double n, const SystemModel& system) const {
  const int p = system.p;
  const auto& comm = system.comm;
  // Metadata broadcast.
  double to = comm.t_bcast(p, kMetadataBytes);
  // Distribution + collection: (p-1) sends each way; the messages carry
  // N(N+1) doubles in total, of which each remote rank holds ~1/p.
  const double total_bytes = n * (n + 1.0) * kBytesPerDouble;
  const double avg_bytes = total_bytes / static_cast<double>(p);
  to += 2.0 * static_cast<double>(p - 1) * comm.t_send(avg_bytes);

  // Per-step pivot-row broadcasts of 8(N-i) bytes. The runtime switches to
  // the long-message algorithm once a row exceeds the threshold, so split
  // the sum: steps with k := N-i > thr use the long law, the rest the flat
  // one. Σ of k over (a, b] is (b(b+1) - a(a+1)) / 2.
  const double pm1 = static_cast<double>(p - 1);
  const double thr_rows = std::min(
      n, std::floor(system.large_bcast_threshold_bytes / kBytesPerDouble));
  const double n_small = thr_rows;           // steps with k in [1, thr]
  const double n_large = n - thr_rows;       // steps with k in (thr, N]
  const double sum_small_bytes =
      kBytesPerDouble * thr_rows * (thr_rows + 1.0) / 2.0;
  const double sum_large_bytes =
      kBytesPerDouble * (n * (n + 1.0) - thr_rows * (thr_rows + 1.0)) / 2.0;
  to += n_small * comm.bcast_const_s +
        pm1 * (n_small * comm.bcast_alpha_s +
               comm.bcast_beta_s_per_byte * sum_small_bytes);
  to += n_large * (comm.bcast_large_const_s + pm1 * comm.bcast_large_alpha_s) +
        comm.bcast_large_beta_s_per_byte * sum_large_bytes;

  // Per-step rhs broadcast (8 bytes, always short) and barrier.
  to += n * comm.t_bcast(p, kBytesPerDouble);
  to += n * comm.t_barrier(p);
  return to;
}

// ---- MM ----

double MmOverheadModel::work(double n) const {
  return numeric::mm_workload(n);
}

double MmOverheadModel::sequential_flops(double /*n*/) const {
  return 0.0;  // perfectly parallel: Corollary 2 applies
}

double MmOverheadModel::overhead(double n, const SystemModel& system) const {
  const int p = system.p;
  const auto& comm = system.comm;
  double to = comm.t_bcast(p, kMetadataBytes);
  // A rows out and C rows back: (p-1) sends each way, ~8N²/p bytes apiece.
  const double avg_bytes =
      n * n * kBytesPerDouble / static_cast<double>(p);
  to += 2.0 * static_cast<double>(p - 1) * comm.t_send(avg_bytes);
  // B to everyone — long-message broadcast once 8N² crosses the runtime's
  // threshold (N ≈ 40 for 12 KiB), flat tree below it. The long law is an
  // affine fit whose constants can extrapolate slightly negative at very
  // small p·m, hence the clamp.
  const double b_bytes = n * n * kBytesPerDouble;
  if (b_bytes >= system.large_bcast_threshold_bytes) {
    to += std::max(0.0, comm.t_bcast_large(p, b_bytes));
  } else {
    to += comm.t_bcast(p, b_bytes);
  }
  return std::max(to, 1e-12);
}

// ---- Jacobi ----

JacobiOverheadModel::JacobiOverheadModel(std::int64_t sweeps)
    : sweeps_(sweeps) {
  HETSCALE_REQUIRE(sweeps_ >= 1, "Jacobi needs sweeps >= 1");
}

double JacobiOverheadModel::work(double n) const {
  // algos::jacobi_workload — sweeps interior updates of 6 flops over an
  // (n-2) x n band layout (kernels::jacobi_sweep_flops).
  return static_cast<double>(sweeps_) * 6.0 * (n - 2.0) * n;
}

double JacobiOverheadModel::sequential_flops(double /*n*/) const {
  return 0.0;  // band updates are fully parallel: Corollary 2 applies
}

double JacobiOverheadModel::overhead(double n,
                                     const SystemModel& system) const {
  const int p = system.p;
  if (p <= 1) return 1e-12;
  const auto& comm = system.comm;
  double to = comm.t_bcast(p, kMetadataBytes);
  // Grid bands out and back: (p-1) sends each way, ~8N²/p bytes apiece.
  const double band_bytes =
      n * n * kBytesPerDouble / static_cast<double>(p);
  to += 2.0 * static_cast<double>(p - 1) * comm.t_send(band_bytes);
  // Per sweep the pairwise ghost-row exchanges overlap across band
  // boundaries; the critical path pays one row down + one row up.
  to += static_cast<double>(sweeps_) * 2.0 *
        comm.t_send(n * kBytesPerDouble);
  return to;
}

// ---- SpMV ----

namespace {
/// The synthetic CSR matrix carries 4..16 nonzeros per row, uniform in
/// expectation — 10 on average (algos::make_synthetic_csr).
constexpr double kSpmvMeanNnzPerRow = 10.0;
/// Fraction of the dense marked rate sustained streaming CSR
/// (algos::kSpmvStreamEfficiency, mirrored to keep predict free of an
/// algos dependency).
constexpr double kSpmvStreamEfficiency = 0.35;
/// Bytes shipped per nonzero when distributing a CSR block: an 8-byte
/// value plus a packed 4-byte column index.
constexpr double kSpmvBytesPerNnz = 12.0;
}  // namespace

SpmvOverheadModel::SpmvOverheadModel(std::int64_t sweeps) : sweeps_(sweeps) {
  HETSCALE_REQUIRE(sweeps_ >= 1, "SpMV needs sweeps >= 1");
}

double SpmvOverheadModel::work(double n) const {
  return static_cast<double>(sweeps_) * 2.0 * kSpmvMeanNnzPerRow * n;
}

double SpmvOverheadModel::sequential_flops(double /*n*/) const {
  return 0.0;
}

double SpmvOverheadModel::overhead(double n,
                                   const SystemModel& system) const {
  const auto& comm = system.comm;
  const int p = system.p;
  // Memory-bound stall: the sweep flops are charged at the stream
  // efficiency, so beyond the ideal W/C the system loses W/C·(1/η - 1).
  double to = work(n) / system.marked_speed *
              (1.0 / kSpmvStreamEfficiency - 1.0);
  if (p <= 1) return std::max(to, 1e-12);
  to += comm.t_bcast(p, kMetadataBytes);
  // CSR row blocks to the (p-1) remote ranks, ~nnz/p nonzeros apiece.
  const double block_bytes =
      kSpmvBytesPerNnz * kSpmvMeanNnzPerRow * n / static_cast<double>(p);
  to += static_cast<double>(p - 1) * comm.t_send(block_bytes);
  // Initial x to everyone.
  const double x_bytes = n * kBytesPerDouble;
  if (x_bytes >= system.large_bcast_threshold_bytes) {
    to += std::max(0.0, comm.t_bcast_large(p, x_bytes));
  } else {
    to += comm.t_bcast(p, x_bytes);
  }
  // Per sweep, a (p-1)-step ring allgather of ~8N/p-byte blocks.
  to += static_cast<double>(sweeps_) * static_cast<double>(p - 1) *
        comm.t_send(x_bytes / static_cast<double>(p));
  return to;
}

std::unique_ptr<OverheadModel> overhead_model_for(const std::string& algo) {
  if (algo == "ge") return std::make_unique<GeOverheadModel>();
  if (algo == "mm") return std::make_unique<MmOverheadModel>();
  if (algo == "jacobi") return std::make_unique<JacobiOverheadModel>();
  if (algo == "spmv") return std::make_unique<SpmvOverheadModel>();
  HETSCALE_REQUIRE(false, "no analytic overhead model for algorithm '" +
                              algo + "' (supported: ge, mm, jacobi, spmv)");
  return nullptr;  // unreachable
}

// ---- Prediction pipeline ----

double predicted_time(const OverheadModel& model, const SystemModel& system,
                      double n) {
  HETSCALE_REQUIRE(system.marked_speed > 0.0,
                   "marked speed must be positive");
  HETSCALE_REQUIRE(system.p >= 1, "need at least one process");
  const double w = model.work(n);
  const double w_seq = model.sequential_flops(n);
  return (w - w_seq) / system.marked_speed +
         model.sequential_time(n, system) + model.overhead(n, system);
}

double predicted_speed_efficiency(const OverheadModel& model,
                                  const SystemModel& system, double n) {
  return model.work(n) /
         (predicted_time(model, system, n) * system.marked_speed);
}

std::int64_t predicted_required_size(const OverheadModel& model,
                                     const SystemModel& system,
                                     double target_es, double n_max) {
  HETSCALE_REQUIRE(target_es > 0.0 && target_es < 1.0,
                   "target efficiency must be in (0, 1)");
  const double n_star = numeric::bracket_and_bisect(
      [&](double n) {
        return predicted_speed_efficiency(model, system, n) - target_es;
      },
      4.0, 64.0, n_max);
  return static_cast<std::int64_t>(std::ceil(n_star));
}

double predicted_scalability(const OverheadModel& model,
                             const SystemModel& from, const SystemModel& to,
                             double target_es) {
  const auto n_from = static_cast<double>(
      predicted_required_size(model, from, target_es));
  const auto n_to =
      static_cast<double>(predicted_required_size(model, to, target_es));
  return theorem1_scalability(
      model.sequential_time(n_from, from), model.overhead(n_from, from),
      model.sequential_time(n_to, to), model.overhead(n_to, to));
}

}  // namespace hetscale::predict
