#include "hetscale/predict/zoo.hpp"

#include <algorithm>
#include <cmath>

#include "hetscale/support/error.hpp"

namespace hetscale::predict {

namespace {

/// Shared box bounds. Efficiencies live in (0, ~1]; overhead coefficients
/// are non-negative by construction. kCoefMax keeps a diverging fit from
/// wandering to infinity (where the Jacobian flatlines).
constexpr double kE0Min = 1e-6;
constexpr double kE0Max = 1.5;
constexpr double kCoefMax = 1e18;

double clamp_to(double value, double lo, double hi) {
  return std::min(std::max(value, lo), hi);
}

/// Largest measured E_s — every model's natural e0 seed.
double peak_efficiency(const scal::FitDataset& data) {
  double peak = 0.0;
  for (const auto& point : data.points) {
    peak = std::max(peak, point.speed_efficiency);
  }
  return clamp_to(peak, kE0Min, kE0Max);
}

// ---- usl ----------------------------------------------------------------

class UslModel final : public ScalabilityModel {
 public:
  const std::string& name() const override {
    static const std::string kName = "usl";
    return kName;
  }
  const std::vector<std::string>& parameter_names() const override {
    static const std::vector<std::string> kNames{"e0", "sigma", "kappa"};
    return kNames;
  }
  std::vector<double> initial_guess(
      const scal::FitDataset& data) const override {
    // Seed sigma from the mean efficiency decay per added processor.
    double sigma = 0.0;
    double count = 0.0;
    const double e0 = peak_efficiency(data);
    for (const auto& point : data.points) {
      if (point.p > 1 && point.speed_efficiency > 0.0) {
        sigma += (e0 / point.speed_efficiency - 1.0) /
                 static_cast<double>(point.p - 1);
        count += 1.0;
      }
    }
    return {e0, count > 0.0 ? sigma / count : 0.0, 0.0};
  }
  void clamp(std::span<double> params) const override {
    params[0] = clamp_to(params[0], kE0Min, kE0Max);
    params[1] = clamp_to(params[1], 0.0, kCoefMax);
    params[2] = clamp_to(params[2], 0.0, kCoefMax);
  }
  double predict(const scal::FitPoint& point,
                 std::span<const double> params) const override {
    const double p = static_cast<double>(point.p);
    const double denom =
        1.0 + params[1] * (p - 1.0) + params[2] * p * (p - 1.0);
    return params[0] / denom;
  }
};

// ---- granularity --------------------------------------------------------

class GranularityModel final : public ScalabilityModel {
 public:
  const std::string& name() const override {
    static const std::string kName = "granularity";
    return kName;
  }
  const std::vector<std::string>& parameter_names() const override {
    static const std::vector<std::string> kNames{"e0", "c", "a", "b"};
    return kNames;
  }
  std::vector<double> initial_guess(
      const scal::FitDataset& data) const override {
    // With a = b = 1 the overhead ratio is c p / n; seed c from the mean.
    const double e0 = peak_efficiency(data);
    double c = 0.0;
    double count = 0.0;
    for (const auto& point : data.points) {
      if (point.speed_efficiency > 0.0 && point.p > 0) {
        c += (e0 / point.speed_efficiency - 1.0) *
             static_cast<double>(point.n) / static_cast<double>(point.p);
        count += 1.0;
      }
    }
    return {e0, count > 0.0 ? std::max(c / count, 0.0) : 1.0, 1.0, 1.0};
  }
  void clamp(std::span<double> params) const override {
    params[0] = clamp_to(params[0], kE0Min, kE0Max);
    params[1] = clamp_to(params[1], 0.0, kCoefMax);
    params[2] = clamp_to(params[2], 0.0, 4.0);  // exponents stay physical
    params[3] = clamp_to(params[3], 0.0, 4.0);
  }
  double predict(const scal::FitPoint& point,
                 std::span<const double> params) const override {
    const double p = static_cast<double>(point.p);
    const double n = static_cast<double>(point.n);
    const double inv_g =
        params[1] * std::pow(p, params[2]) / std::pow(n, params[3]);
    return params[0] / (1.0 + inv_g);
  }
};

// ---- bsf ----------------------------------------------------------------

class BsfModel final : public ScalabilityModel {
 public:
  const std::string& name() const override {
    static const std::string kName = "bsf";
    return kName;
  }
  const std::vector<std::string>& parameter_names() const override {
    static const std::vector<std::string> kNames{"e0", "u_flops", "v_flops"};
    return kNames;
  }
  std::vector<double> initial_guess(
      const scal::FitDataset& data) const override {
    // Seed u (flops of overhead per processor) from the mean implied
    // overhead; the quadratic term starts at zero.
    const double e0 = peak_efficiency(data);
    double u = 0.0;
    double count = 0.0;
    for (const auto& point : data.points) {
      if (point.speed_efficiency > 0.0 && point.p > 0 &&
          point.work_flops > 0.0) {
        u += (e0 / point.speed_efficiency - 1.0) * point.work_flops /
             static_cast<double>(point.p);
        count += 1.0;
      }
    }
    return {e0, count > 0.0 ? std::max(u / count, 0.0) : 0.0, 0.0};
  }
  void clamp(std::span<double> params) const override {
    params[0] = clamp_to(params[0], kE0Min, kE0Max);
    params[1] = clamp_to(params[1], 0.0, kCoefMax);
    params[2] = clamp_to(params[2], 0.0, kCoefMax);
  }
  double predict(const scal::FitPoint& point,
                 std::span<const double> params) const override {
    const double p = static_cast<double>(point.p);
    const double overhead_flops = params[1] * p + params[2] * p * p;
    return params[0] / (1.0 + overhead_flops / point.work_flops);
  }
};

// ---- heet ---------------------------------------------------------------

class HeetModel final : public ScalabilityModel {
 public:
  const std::string& name() const override {
    static const std::string kName = "heet";
    return kName;
  }
  const std::vector<std::string>& parameter_names() const override {
    static const std::vector<std::string> kNames{"e0", "a", "b_het"};
    return kNames;
  }
  std::vector<double> initial_guess(
      const scal::FitDataset& data) const override {
    // Seed a from the homogeneous-coefficient estimate (h folded in), b
    // from zero — the fit decides how much the heterogeneity score buys.
    const double e0 = peak_efficiency(data);
    double a = 0.0;
    double count = 0.0;
    for (const auto& point : data.points) {
      if (point.speed_efficiency > 0.0 && point.p > 1) {
        a += (e0 / point.speed_efficiency - 1.0) *
             static_cast<double>(point.n) / static_cast<double>(point.p - 1);
        count += 1.0;
      }
    }
    return {e0, count > 0.0 ? std::max(a / count, 0.0) : 1.0, 0.0};
  }
  void clamp(std::span<double> params) const override {
    params[0] = clamp_to(params[0], kE0Min, kE0Max);
    params[1] = clamp_to(params[1], 0.0, kCoefMax);
    // b may be negative (heterogeneity can help: the fast root soaks up
    // the serial portion), but the combined coefficient must stay >= 0 —
    // enforced in predict by flooring the denominator.
    params[2] = clamp_to(params[2], -kCoefMax, kCoefMax);
  }
  double predict(const scal::FitPoint& point,
                 std::span<const double> params) const override {
    const double p = static_cast<double>(point.p);
    const double n = static_cast<double>(point.n);
    const double coef =
        std::max(params[1] + params[2] * point.het_score, 0.0);
    return params[0] / (1.0 + coef * (p - 1.0) / n);
  }
};

}  // namespace

double guarded_predict(const ScalabilityModel& model,
                       const scal::FitPoint& point,
                       std::span<const double> params) {
  const double value = model.predict(point, params);
  return std::isfinite(value) ? value : 0.0;
}

std::span<const ScalabilityModel* const> model_zoo() {
  static const UslModel usl;
  static const GranularityModel granularity;
  static const BsfModel bsf;
  static const HeetModel heet;
  static const ScalabilityModel* const kZoo[] = {&usl, &granularity, &bsf,
                                                 &heet};
  return kZoo;
}

const ScalabilityModel* find_model(const std::string& name) {
  for (const ScalabilityModel* model : model_zoo()) {
    if (model->name() == name) return model;
  }
  return nullptr;
}

namespace {

/// Fit over an explicit point subset (shared by the full fit and LOO-CV).
ModelFitResult fit_points(const ScalabilityModel& model,
                          const scal::FitDataset& data,
                          std::span<const scal::FitPoint> points,
                          const LmOptions& options) {
  const LmResiduals residuals = [&](std::span<const double> params,
                                    std::span<double> out) {
    for (std::size_t i = 0; i < points.size(); ++i) {
      out[i] =
          guarded_predict(model, points[i], params) -
          points[i].speed_efficiency;
    }
  };
  const LmClamp clamp = [&](std::span<double> params) {
    model.clamp(params);
  };
  const LmResult lm = levenberg_marquardt(
      residuals, points.size(), model.initial_guess(data), clamp, options);
  return ModelFitResult{lm.params, lm.rmse};
}

}  // namespace

ModelFitResult fit_scalability_model(const ScalabilityModel& model,
                                     const scal::FitDataset& data,
                                     const LmOptions& options) {
  HETSCALE_REQUIRE(!data.points.empty(), "cannot fit an empty dataset");
  return fit_points(model, data, data.points, options);
}

CrossValidation leave_one_out_cv(const ScalabilityModel& model,
                                 const scal::FitDataset& data,
                                 const LmOptions& options) {
  HETSCALE_REQUIRE(!data.points.empty(), "cannot cross-validate nothing");
  CrossValidation cv;
  if (data.points.size() < 2) {
    const ModelFitResult fit = fit_scalability_model(model, data, options);
    cv.rmse = fit.rmse;
    for (const auto& point : data.points) {
      cv.max_abs_error =
          std::max(cv.max_abs_error,
                   std::abs(guarded_predict(model, point, fit.params) -
                            point.speed_efficiency));
    }
    return cv;
  }
  double sum_sq = 0.0;
  std::vector<scal::FitPoint> held_in(data.points.size() - 1);
  for (std::size_t leave = 0; leave < data.points.size(); ++leave) {
    std::size_t w = 0;
    for (std::size_t i = 0; i < data.points.size(); ++i) {
      if (i != leave) held_in[w++] = data.points[i];
    }
    // The initial guess deliberately comes from the *full* dataset: it
    // keeps every fold starting from the same deterministic seed.
    const ModelFitResult fit = fit_points(model, data, held_in, options);
    const double error =
        guarded_predict(model, data.points[leave], fit.params) -
        data.points[leave].speed_efficiency;
    sum_sq += error * error;
    cv.max_abs_error = std::max(cv.max_abs_error, std::abs(error));
  }
  cv.rmse = std::sqrt(sum_sq / static_cast<double>(data.points.size()));
  return cv;
}

}  // namespace hetscale::predict
