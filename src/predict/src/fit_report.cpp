#include "hetscale/predict/fit_report.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "hetscale/obs/format.hpp"
#include "hetscale/support/error.hpp"

namespace hetscale::predict {

namespace {

/// In-sample error of the analytic Theorem-1 pipeline on the dataset. The
/// SystemModel is rebuilt per point from the point's own measured
/// configuration, so a ladder mixing processor counts scores correctly.
void score_analytic(const scal::FitDataset& data, const CommModel& comm,
                    AlgoFitStudy& study) {
  const auto model = overhead_model_for(data.algo);
  double sum_sq = 0.0;
  for (const auto& point : data.points) {
    SystemModel system;
    system.p = point.p;
    system.marked_speed = point.marked_speed;
    system.root_speed = point.root_speed;
    system.comm = comm;
    const double predicted = predicted_speed_efficiency(
        *model, system, static_cast<double>(point.n));
    const double error =
        (std::isfinite(predicted) ? predicted : 0.0) -
        point.speed_efficiency;
    sum_sq += error * error;
    study.analytic_max_abs_error =
        std::max(study.analytic_max_abs_error, std::abs(error));
  }
  study.analytic_rmse =
      std::sqrt(sum_sq / static_cast<double>(data.points.size()));
}

std::string join_params(const ModelFitRow& row) {
  std::string joined;
  for (std::size_t i = 0; i < row.params.size(); ++i) {
    if (i > 0) joined += ";";
    joined += row.param_names[i] + "=" + Table::num(row.params[i], 6);
  }
  return joined;
}

}  // namespace

AlgoFitStudy build_algo_fit_study(const scal::FitDataset& data,
                                  const CommModel& comm,
                                  const LmOptions& options) {
  HETSCALE_REQUIRE(!data.points.empty(),
                   "fit study needs a non-empty dataset");
  AlgoFitStudy study;
  study.algo = data.algo;
  study.point_count = data.points.size();
  study.processor_counts = data.processor_counts();
  study.sizes = data.sizes();
  score_analytic(data, comm, study);

  for (const ScalabilityModel* model : model_zoo()) {
    ModelFitRow row;
    row.model = model->name();
    row.param_names = model->parameter_names();
    const ModelFitResult fit =
        fit_scalability_model(*model, data, options);
    row.params = fit.params;
    row.fit_rmse = fit.rmse;
    row.cv = leave_one_out_cv(*model, data, options);
    row.beats_analytic = row.cv.rmse < study.analytic_rmse;
    study.models.push_back(std::move(row));
  }
  // Rank by held-out error; stable sort keeps the zoo's canonical order
  // on exact ties so the report is deterministic.
  std::stable_sort(study.models.begin(), study.models.end(),
                   [](const ModelFitRow& a, const ModelFitRow& b) {
                     return a.cv.rmse < b.cv.rmse;
                   });
  for (std::size_t i = 0; i < study.models.size(); ++i) {
    study.models[i].rank = static_cast<int>(i) + 1;
  }
  return study;
}

void FitStudyReport::to_json(std::ostream& os) const {
  os << "{\n";
  os << "  \"schema\": \"" << kSchema << "\",\n";
  os << "  \"algos\": [";
  for (std::size_t a = 0; a < algos.size(); ++a) {
    const AlgoFitStudy& study = algos[a];
    os << (a == 0 ? "\n" : ",\n");
    os << "    {\n";
    os << "      \"algo\": \"" << obs::json_escape(study.algo) << "\",\n";
    os << "      \"points\": " << study.point_count << ",\n";
    os << "      \"processor_counts\": [";
    for (std::size_t i = 0; i < study.processor_counts.size(); ++i) {
      os << (i == 0 ? "" : ", ") << study.processor_counts[i];
    }
    os << "],\n";
    os << "      \"sizes\": [";
    for (std::size_t i = 0; i < study.sizes.size(); ++i) {
      os << (i == 0 ? "" : ", ") << study.sizes[i];
    }
    os << "],\n";
    os << "      \"analytic_rmse\": "
       << obs::json_number_or_null(study.analytic_rmse) << ",\n";
    os << "      \"analytic_max_abs_error\": "
       << obs::json_number_or_null(study.analytic_max_abs_error) << ",\n";
    os << "      \"models\": [";
    for (std::size_t m = 0; m < study.models.size(); ++m) {
      const ModelFitRow& row = study.models[m];
      os << (m == 0 ? "\n" : ",\n");
      os << "        {\"model\": \"" << obs::json_escape(row.model)
         << "\", \"rank\": " << row.rank << ", \"fit_rmse\": "
         << obs::json_number_or_null(row.fit_rmse) << ", \"cv_rmse\": "
         << obs::json_number_or_null(row.cv.rmse)
         << ", \"cv_max_abs_error\": "
         << obs::json_number_or_null(row.cv.max_abs_error)
         << ", \"beats_analytic\": "
         << (row.beats_analytic ? "true" : "false") << ", \"params\": {";
      for (std::size_t i = 0; i < row.params.size(); ++i) {
        os << (i == 0 ? "" : ", ") << "\""
           << obs::json_escape(row.param_names[i])
           << "\": " << obs::json_number_or_null(row.params[i]);
      }
      os << "}}";
    }
    os << "\n      ]\n";
    os << "    }";
  }
  os << "\n  ]\n";
  os << "}\n";
}

std::string FitStudyReport::to_csv() const {
  std::string csv =
      "algo,model,rank,cv_rmse,cv_max_abs_error,fit_rmse,analytic_rmse,"
      "beats_analytic,params\n";
  for (const AlgoFitStudy& study : algos) {
    for (const ModelFitRow& row : study.models) {
      csv += study.algo + "," + row.model + "," +
             std::to_string(row.rank) + "," + Table::num(row.cv.rmse, 6) +
             "," + Table::num(row.cv.max_abs_error, 6) + "," +
             Table::num(row.fit_rmse, 6) + "," +
             Table::num(study.analytic_rmse, 6) + "," +
             (row.beats_analytic ? "true" : "false") + "," +
             join_params(row) + "\n";
    }
  }
  return csv;
}

Table FitStudyReport::to_table() const {
  Table table(
      "Model zoo  cross-validated E_s prediction error vs the analytic "
      "model");
  table.set_header({"Algo", "Model", "Rank", "CV RMSE", "CV max", "Fit RMSE",
                    "Analytic RMSE", "Beats analytic", "Parameters"});
  for (const AlgoFitStudy& study : algos) {
    for (const ModelFitRow& row : study.models) {
      table.add_row({study.algo, row.model, std::to_string(row.rank),
                     Table::fixed(row.cv.rmse, 5),
                     Table::fixed(row.cv.max_abs_error, 5),
                     Table::fixed(row.fit_rmse, 5),
                     Table::fixed(study.analytic_rmse, 5),
                     row.beats_analytic ? "yes" : "no", join_params(row)});
    }
  }
  return table;
}

}  // namespace hetscale::predict
