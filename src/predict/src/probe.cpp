#include "hetscale/predict/probe.hpp"

#include <algorithm>
#include <memory>
#include <string>

#include "hetscale/marked/suite.hpp"
#include "hetscale/support/error.hpp"

namespace hetscale::predict {

namespace {

using des::Task;
using vmpi::Comm;

machine::Cluster probe_cluster(const machine::NodeSpec& spec, int nodes) {
  machine::Cluster cluster;
  for (int i = 0; i < nodes; ++i) {
    cluster.add_node("probe-" + std::to_string(i), spec, /*cpus_used=*/1);
  }
  return cluster;
}

}  // namespace

double measure_send_time(const ProbeConfig& config, double bytes) {
  HETSCALE_REQUIRE(bytes >= 0.0, "bytes must be non-negative");
  auto machine = scal::make_machine(probe_cluster(config.node, 2),
                                    config.network, config.params);
  auto elapsed = std::make_shared<double>(0.0);
  machine.run([bytes, elapsed](Comm& comm) -> Task<void> {
    constexpr int kTag = 900;
    if (comm.rank() == 0) {
      co_await comm.send(1, kTag, bytes, {});
    } else {
      const auto message = co_await comm.recv(0, kTag);
      // One-way time: the probe starts at t = 0 on both ranks.
      *elapsed = message.arrival;
    }
  });
  return *elapsed;
}

double measure_bcast_time(const ProbeConfig& config, int ranks,
                          double bytes) {
  HETSCALE_REQUIRE(ranks >= 2, "bcast probe needs at least 2 ranks");
  auto machine = scal::make_machine(probe_cluster(config.node, ranks),
                                    config.network, config.params);
  auto latest = std::make_shared<double>(0.0);
  machine.run([bytes, latest](Comm& comm) -> Task<void> {
    co_await comm.bcast(0, bytes, {});
    *latest = std::max(*latest, comm.now());
  });
  return *latest;
}

double measure_barrier_time(const ProbeConfig& config, int ranks) {
  HETSCALE_REQUIRE(ranks >= 2, "barrier probe needs at least 2 ranks");
  auto machine = scal::make_machine(probe_cluster(config.node, ranks),
                                    config.network, config.params);
  auto latest = std::make_shared<double>(0.0);
  machine.run([latest](Comm& comm) -> Task<void> {
    co_await comm.barrier();
    *latest = std::max(*latest, comm.now());
  });
  return *latest;
}

CommModel probe_comm_model(const ProbeConfig& config) {
  HETSCALE_REQUIRE(config.bytes_large > config.bytes_small,
                   "need two distinct probe sizes");
  CommModel model;

  // Two-point linear fits, exactly the paper's T = a + b·m form.
  const double s1 = measure_send_time(config, config.bytes_small);
  const double s2 = measure_send_time(config, config.bytes_large);
  model.send_beta_s_per_byte =
      (s2 - s1) / (config.bytes_large - config.bytes_small);
  model.send_alpha_s = s1 - model.send_beta_s_per_byte * config.bytes_small;

  // Collectives are affine in (p-1) with a constant term (the pipelined
  // end latency), so both a size pair and a rank pair are probed.
  const int p2 = config.collective_ranks;
  const int p1 = std::max(2, p2 / 2 + 1);
  HETSCALE_REQUIRE(p2 > p1, "collective_ranks too small to fit the model");

  const double b11 = measure_bcast_time(config, p1, config.bytes_small);
  const double b12 = measure_bcast_time(config, p1, config.bytes_large);
  const double b21 = measure_bcast_time(config, p2, config.bytes_small);
  model.bcast_beta_s_per_byte =
      (b12 - b11) /
      (static_cast<double>(p1 - 1) * (config.bytes_large - config.bytes_small));
  model.bcast_alpha_s = (b21 - b11) / static_cast<double>(p2 - p1) -
                        model.bcast_beta_s_per_byte * config.bytes_small;
  model.bcast_const_s =
      b11 - static_cast<double>(p1 - 1) *
                (model.bcast_alpha_s +
                 model.bcast_beta_s_per_byte * config.bytes_small);

  const double bar1 = measure_barrier_time(config, p1);
  const double bar2 = measure_barrier_time(config, p2);
  model.barrier_unit_s = (bar2 - bar1) / static_cast<double>(p2 - p1);
  model.barrier_const_s =
      bar1 - static_cast<double>(p1 - 1) * model.barrier_unit_s;

  // Long-message broadcast: per-byte cost independent of (p-1).
  HETSCALE_REQUIRE(config.bytes_xl_large > config.bytes_xl_small,
                   "need two distinct long-message probe sizes");
  const double l11 = measure_bcast_time(config, p1, config.bytes_xl_small);
  const double l12 = measure_bcast_time(config, p1, config.bytes_xl_large);
  const double l21 = measure_bcast_time(config, p2, config.bytes_xl_small);
  model.bcast_large_beta_s_per_byte =
      (l12 - l11) / (config.bytes_xl_large - config.bytes_xl_small);
  model.bcast_large_alpha_s = (l21 - l11) / static_cast<double>(p2 - p1);
  model.bcast_large_const_s =
      l11 - static_cast<double>(p1 - 1) * model.bcast_large_alpha_s -
      model.bcast_large_beta_s_per_byte * config.bytes_xl_small;
  return model;
}

SystemModel system_model_for(const machine::Cluster& cluster,
                             const CommModel& comm) {
  SystemModel system;
  system.p = cluster.processor_count();
  const auto speeds = marked::rank_marked_speeds(cluster);
  system.marked_speed = 0.0;
  for (double c : speeds) system.marked_speed += c;
  system.root_speed = speeds.front();
  system.comm = comm;
  return system;
}

}  // namespace hetscale::predict
