#include "hetscale/predict/theory.hpp"

#include "hetscale/support/error.hpp"

namespace hetscale::predict {

double theorem1_scalability(double t0_from, double to_from, double t0_to,
                            double to_to) {
  HETSCALE_REQUIRE(t0_from >= 0.0 && to_from >= 0.0 && t0_to >= 0.0 &&
                       to_to >= 0.0,
                   "times must be non-negative");
  const double denom = t0_to + to_to;
  HETSCALE_REQUIRE(denom > 0.0, "scaled system must have positive overhead");
  return (t0_from + to_from) / denom;
}

double corollary2_scalability(double to_from, double to_to) {
  return theorem1_scalability(0.0, to_from, 0.0, to_to);
}

double theorem1_scaled_work(double w_from, double c_from, double t0_from,
                            double to_from, double c_to, double t0_to,
                            double to_to) {
  HETSCALE_REQUIRE(w_from > 0.0, "work must be positive");
  HETSCALE_REQUIRE(c_from > 0.0 && c_to > 0.0,
                   "marked speeds must be positive");
  const double base = c_from * (t0_from + to_from);
  HETSCALE_REQUIRE(base > 0.0, "base system must have positive overhead");
  return w_from * c_to * (t0_to + to_to) / base;
}

}  // namespace hetscale::predict
