#include "hetscale/predict/fitter.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "hetscale/numeric/linsolve.hpp"
#include "hetscale/numeric/matrix.hpp"
#include "hetscale/support/error.hpp"

namespace hetscale::predict {

namespace {

/// Non-finite residuals poison every norm downstream; map them to a large
/// finite penalty so the solver backs out of the region instead of
/// propagating NaN into the parameter estimates.
constexpr double kResidualPenalty = 1e6;

double sanitize(double r) { return std::isfinite(r) ? r : kResidualPenalty; }

double cost_of(std::span<const double> residuals) {
  double cost = 0.0;
  for (const double r : residuals) cost += r * r;
  return cost;
}

}  // namespace

LmResult levenberg_marquardt(const LmResiduals& residuals,
                             std::size_t residual_count,
                             std::vector<double> initial,
                             const LmClamp& clamp, const LmOptions& options) {
  HETSCALE_REQUIRE(residuals != nullptr, "fitter needs a residual function");
  const std::size_t k = initial.size();
  if (clamp) clamp(initial);
  LmResult result;
  result.params = std::move(initial);
  if (residual_count == 0 || k == 0) return result;

  const auto eval = [&](std::span<const double> params,
                        std::vector<double>& out) {
    out.assign(residual_count, 0.0);
    residuals(params, out);
    for (double& r : out) r = sanitize(r);
  };

  std::vector<double> r0;
  eval(result.params, r0);
  double cost = cost_of(r0);

  double lambda = options.lambda_init;
  std::vector<double> r_step;
  std::vector<double> r_probe;
  numeric::Matrix jacobian(residual_count, k);

  for (int iteration = 0; iteration < options.max_iterations; ++iteration) {
    result.iterations = iteration + 1;
    // Forward-difference Jacobian, one column per parameter, fixed order.
    for (std::size_t j = 0; j < k; ++j) {
      const double theta = result.params[j];
      const double h = std::max(options.jacobian_rel_step * std::abs(theta),
                                options.jacobian_abs_floor);
      std::vector<double> probe = result.params;
      probe[j] = theta + h;
      if (clamp) clamp(probe);
      const double dh = probe[j] - theta;
      if (dh == 0.0) {
        // The clamp pinned this parameter at a bound; a zero column keeps
        // it frozen for this iteration (the eps ridge keeps A solvable).
        for (std::size_t i = 0; i < residual_count; ++i) {
          jacobian(i, j) = 0.0;
        }
        continue;
      }
      eval(probe, r_probe);
      for (std::size_t i = 0; i < residual_count; ++i) {
        jacobian(i, j) = (r_probe[i] - r0[i]) / dh;
      }
    }

    // Normal equations: A = J^T J, g = J^T r.
    numeric::Matrix jtj(k, k);
    std::vector<double> jtr(k, 0.0);
    for (std::size_t a = 0; a < k; ++a) {
      for (std::size_t b = 0; b < k; ++b) {
        double sum = 0.0;
        for (std::size_t i = 0; i < residual_count; ++i) {
          sum += jacobian(i, a) * jacobian(i, b);
        }
        jtj(a, b) = sum;
      }
      double sum = 0.0;
      for (std::size_t i = 0; i < residual_count; ++i) {
        sum += jacobian(i, a) * r0[i];
      }
      jtr[a] = sum;
    }

    bool stepped = false;
    while (lambda <= options.lambda_max) {
      numeric::Matrix damped = jtj;
      for (std::size_t a = 0; a < k; ++a) {
        damped(a, a) += lambda * (jtj(a, a) + 1e-12);
      }
      std::vector<double> rhs(k);
      for (std::size_t a = 0; a < k; ++a) rhs[a] = -jtr[a];
      std::vector<double> delta;
      try {
        delta = numeric::solve_dense(damped, rhs, numeric::Pivoting::kPartial);
      } catch (const NumericError&) {
        lambda *= options.lambda_up;  // singular even with the ridge: damp up
        continue;
      }
      std::vector<double> candidate = result.params;
      bool finite = true;
      for (std::size_t a = 0; a < k; ++a) {
        candidate[a] += delta[a];
        finite = finite && std::isfinite(candidate[a]);
      }
      if (finite) {
        if (clamp) clamp(candidate);
        eval(candidate, r_step);
        const double candidate_cost = cost_of(r_step);
        if (candidate_cost < cost) {
          const double improvement =
              (cost - candidate_cost) / std::max(cost, 1e-300);
          result.params = std::move(candidate);
          r0 = r_step;
          const double previous = cost;
          cost = candidate_cost;
          lambda = std::max(lambda * options.lambda_down, options.lambda_min);
          stepped = true;
          if (improvement < options.cost_rel_tolerance || previous == 0.0) {
            iteration = options.max_iterations;  // converged: leave outer loop
          }
          break;
        }
      }
      lambda *= options.lambda_up;
    }
    if (!stepped) break;  // lambda escaped the ceiling: local minimum
  }

  result.rmse = std::sqrt(cost / static_cast<double>(residual_count));
  return result;
}

}  // namespace hetscale::predict
