// The paper's theoretical results (§3.4).
//
// Theorem 1: for a balanced-load algorithm with sequential fraction α, if a
// problem size keeping speed-efficiency constant exists, then
//     ψ(C, C') = (t0 + To) / (t0' + To')
// where t0 is the sequential-portion execution time and To the total
// communication overhead on each system.
//
// Corollary 1: α = 0 and To constant  ⇒  ψ = 1.
// Corollary 2: α = 0                  ⇒  ψ = To / To'.
//
// Also exposed: the scaled problem size W' implied by the theorem's proof,
//     W' = W · C'·(t0' + To') / (C·(t0 + To)),
// used to cross-check the solver against the closed form.
#pragma once

namespace hetscale::predict {

/// Theorem 1: ψ = (t0 + To) / (t0' + To').
double theorem1_scalability(double t0_from, double to_from, double t0_to,
                            double to_to);

/// Corollary 2: ψ = To / To' (perfectly parallel algorithm).
double corollary2_scalability(double to_from, double to_to);

/// The scaled work W' that keeps speed-efficiency constant (Theorem 1's
/// proof): W' = W · C'(t0' + To') / (C (t0 + To)).
double theorem1_scaled_work(double w_from, double c_from, double t0_from,
                            double to_from, double c_to, double t0_to,
                            double to_to);

}  // namespace hetscale::predict
