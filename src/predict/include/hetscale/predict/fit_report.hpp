// The fit study report — the model zoo scored against the paper's
// analytic prediction.
//
// For one algorithm's FitDataset the study (a) fits every zoo model and
// cross-validates it leave-one-point-out, (b) scores the *unfitted*
// analytic Theorem-1 pipeline (overhead_model_for + a probed CommModel)
// on the same points, and (c) ranks the models by cross-validated RMSE.
// A model "beats analytic" when its held-out error is below the analytic
// model's in-sample error — a deliberately generous bar for the analytic
// side, which never saw the data.
//
// Three renderings of the same record: to_json() emits the documented
// schema "hetscale.predict.fit/v1" (docs/architecture.md), to_csv() the
// flat ranking table, to_table() the human view. All are pure functions
// of deterministically-gathered data, so output is byte-identical across
// --jobs and kernel pins.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "hetscale/predict/models.hpp"
#include "hetscale/predict/zoo.hpp"
#include "hetscale/support/table.hpp"

namespace hetscale::predict {

/// One fitted model's scorecard on one algorithm's dataset.
struct ModelFitRow {
  std::string model;
  std::vector<std::string> param_names;
  std::vector<double> params;
  double fit_rmse = 0.0;        ///< in-sample RMSE of the full fit
  CrossValidation cv;           ///< leave-one-out held-out errors
  int rank = 0;                 ///< 1 = best cv rmse for the algorithm
  bool beats_analytic = false;  ///< cv.rmse < analytic_rmse
};

/// The zoo ranked on one algorithm, with the analytic yardstick.
struct AlgoFitStudy {
  std::string algo;
  std::size_t point_count = 0;
  std::vector<int> processor_counts;
  std::vector<std::int64_t> sizes;
  double analytic_rmse = 0.0;          ///< Theorem-1 pipeline, in-sample
  double analytic_max_abs_error = 0.0;
  std::vector<ModelFitRow> models;     ///< sorted by rank
};

/// Fit + cross-validate every zoo model on `data` and score the analytic
/// model (overhead_model_for(data.algo) — dataset sweeps must match the
/// model's, 50 for jacobi/spmv) with a SystemModel built per point from
/// the point's own p / marked_speed / root_speed and the probed `comm`.
/// Ties in cv rmse keep the zoo's canonical model order.
AlgoFitStudy build_algo_fit_study(const scal::FitDataset& data,
                                  const CommModel& comm,
                                  const LmOptions& options = {});

/// The full report: one AlgoFitStudy per requested algorithm.
struct FitStudyReport {
  static constexpr const char* kSchema = "hetscale.predict.fit/v1";

  std::vector<AlgoFitStudy> algos;

  void to_json(std::ostream& os) const;
  std::string to_csv() const;
  Table to_table() const;
};

}  // namespace hetscale::predict
