// A small deterministic nonlinear least-squares fitter (Levenberg-
// Marquardt with a numeric Jacobian).
//
// The model zoo fits its scalability models with this solver. Determinism
// is a hard contract: a fixed iteration budget, no randomness, a fixed
// lambda schedule, and every floating-point operation executed in the same
// order on every run — so a fit over the same dataset is bit-identical at
// any --jobs count and under either HETSCALE_KERNEL pin (the data itself
// already is). The normal equations are regularized Marquardt-style,
//   (J^T J + lambda * (diag(J^T J) + eps I)) delta = -J^T r,
// so rank-deficient problems (fewer points than parameters, a parameter
// the residuals do not depend on) degrade gracefully instead of throwing.
#pragma once

#include <functional>
#include <span>
#include <vector>

namespace hetscale::predict {

struct LmOptions {
  int max_iterations = 60;     ///< fixed budget; no early wall-clock exits
  double lambda_init = 1e-3;
  double lambda_up = 10.0;     ///< rejected step: lambda *= lambda_up
  double lambda_down = 0.25;   ///< accepted step: lambda *= lambda_down
  double lambda_min = 1e-12;
  double lambda_max = 1e12;    ///< stop once lambda escapes this ceiling
  /// Relative forward-difference step for the numeric Jacobian; the
  /// absolute floor keeps parameters sitting at zero movable.
  double jacobian_rel_step = 1e-6;
  double jacobian_abs_floor = 1e-9;
  /// Stop when the cost improves by less than this relative amount.
  double cost_rel_tolerance = 1e-14;
};

struct LmResult {
  std::vector<double> params;
  double rmse = 0.0;    ///< sqrt(mean squared residual) at `params`
  int iterations = 0;   ///< accepted + rejected steps consumed
};

/// Residual evaluator: fill `out` (pre-sized to residual_count) with the
/// residuals at `params`. Non-finite residuals are treated as +1e6 by the
/// solver (a rejected region, not a crash).
using LmResiduals =
    std::function<void(std::span<const double>, std::span<double>)>;

/// Optional box projection applied to every candidate parameter vector
/// (including the initial guess).
using LmClamp = std::function<void(std::span<double>)>;

/// Minimize sum of squared residuals from `initial`. `residual_count == 0`
/// or an empty parameter vector returns the (clamped) initial guess with
/// rmse 0 — degenerate inputs are the caller's single-point ladders, not
/// errors.
LmResult levenberg_marquardt(const LmResiduals& residuals,
                             std::size_t residual_count,
                             std::vector<double> initial,
                             const LmClamp& clamp = nullptr,
                             const LmOptions& options = {});

}  // namespace hetscale::predict
