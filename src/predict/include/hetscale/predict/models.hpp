// Analytic overhead models + the prediction pipeline (paper §4.5).
//
// The paper predicts GE's scalability by (a) measuring the machine's
// communication parameters (T_send, T_bcast, T_barrier, unit compute time),
// (b) writing the algorithm's total overhead To(N, p) in terms of them, and
// (c) solving the isospeed-efficiency condition for the required N' —
// Corollary 2 then gives ψ = To/To'. This module is that machinery,
// generalized over algorithms via OverheadModel.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hetscale/machine/cluster.hpp"

namespace hetscale::predict {

/// Measured communication parameters of the machine (probe.hpp fills this
/// in from simulated micro-benchmarks, as the paper did on Sunwulf).
struct CommModel {
  double send_alpha_s = 0.0;     ///< T_send(m) = α + β·m
  double send_beta_s_per_byte = 0.0;
  double bcast_const_s = 0.0;    ///< T_bcast(p, m) = c_b + (p-1)(α_b + β_b·m)
  double bcast_alpha_s = 0.0;
  double bcast_beta_s_per_byte = 0.0;
  /// Long-message broadcast (van de Geijn): T = c_L + (p-1)·α_L + β_L·m —
  /// the per-byte cost no longer multiplies (p-1).
  double bcast_large_const_s = 0.0;
  double bcast_large_alpha_s = 0.0;
  double bcast_large_beta_s_per_byte = 0.0;
  double barrier_const_s = 0.0;  ///< T_barrier(p) = c_bar + (p-1)·u
  double barrier_unit_s = 0.0;

  double t_send(double bytes) const;
  double t_bcast(int p, double bytes) const;
  double t_bcast_large(int p, double bytes) const;
  double t_barrier(int p) const;
};

/// Everything the models need to know about one system configuration.
struct SystemModel {
  int p = 0;                        ///< process (processor) count
  double marked_speed = 0.0;        ///< C (flop/s)
  double root_speed = 0.0;          ///< rank 0's speed — runs the seq. part
  CommModel comm;
  /// The runtime's broadcast-algorithm switchover (vmpi::CollectiveTuning);
  /// the overhead models pick the short- or long-message law per call.
  double large_bcast_threshold_bytes = 12288.0;
};

/// An algorithm's analytic cost decomposition T = (W - W_seq)/C + t0 + To.
class OverheadModel {
 public:
  virtual ~OverheadModel() = default;

  /// W(N).
  virtual double work(double n) const = 0;

  /// Flops of the sequential (unparallelizable) portion.
  virtual double sequential_flops(double n) const = 0;

  /// t0 — execution time of the sequential portion on the system.
  double sequential_time(double n, const SystemModel& system) const;

  /// To — total communication overhead at problem size N on the system.
  virtual double overhead(double n, const SystemModel& system) const = 0;
};

/// Parallel GE (paper §4.5): α = O(1/N) from back substitution;
/// To = T_bcast(meta) + (p-1)·(T_send(dist) + T_send(coll))
///      + Σ_i [T_bcast(p, 8(N-i)) + T_bcast(p, 8) + T_barrier(p)].
class GeOverheadModel final : public OverheadModel {
 public:
  double work(double n) const override;
  double sequential_flops(double n) const override;
  double overhead(double n, const SystemModel& system) const override;
};

/// Parallel MM: α = 0 (Corollary 2 applies);
/// To = T_bcast(meta) + (p-1)·T_send(avg A block) + T_bcast(p, 8N²)
///      + (p-1)·T_send(avg C block).
class MmOverheadModel final : public OverheadModel {
 public:
  double work(double n) const override;
  double sequential_flops(double n) const override;
  double overhead(double n, const SystemModel& system) const override;
};

/// Parallel Jacobi 2-D stencil (algos/jacobi.hpp): α = 0;
/// To = T_bcast(meta) + (p-1)·(T_send(band out) + T_send(band back))
///      + sweeps·2·T_send(8N) — per sweep, the ghost-row exchanges of the
/// band boundaries run pairwise in parallel, so the critical path pays one
/// row down plus one row up.
class JacobiOverheadModel final : public OverheadModel {
 public:
  explicit JacobiOverheadModel(std::int64_t sweeps = 50);
  double work(double n) const override;
  double sequential_flops(double n) const override;
  double overhead(double n, const SystemModel& system) const override;

 private:
  std::int64_t sweeps_;
};

/// Iterated SpMV (algos/spmv.hpp): α = 0, but the kernel streams CSR at
/// kSpmvStreamEfficiency of the dense marked rate, so the stall time
/// (W/C)·(1/η - 1) is charged as overhead on top of the communication:
/// To = stall + T_bcast(meta) + (p-1)·T_send(avg CSR block) + x broadcast
///      + sweeps·(p-1)·T_send(8N/p) ring allgather steps.
/// The workload uses the synthetic matrix's expected 10 nonzeros per row.
class SpmvOverheadModel final : public OverheadModel {
 public:
  explicit SpmvOverheadModel(std::int64_t sweeps = 50);
  double work(double n) const override;
  double sequential_flops(double n) const override;
  double overhead(double n, const SystemModel& system) const override;

 private:
  std::int64_t sweeps_;
};

/// The analytic model for a CLI algorithm name ("ge", "mm", "jacobi",
/// "spmv"). Throws PreconditionError naming the supported algorithms for
/// anything else — unsupported algos fail loudly, never silently fall back
/// to GE.
std::unique_ptr<OverheadModel> overhead_model_for(const std::string& algo);

/// Predicted execution time T(N) = (W - W_seq)/C + t0 + To.
double predicted_time(const OverheadModel& model, const SystemModel& system,
                      double n);

/// Predicted speed-efficiency E_s(N) = W / (T·C).
double predicted_speed_efficiency(const OverheadModel& model,
                                  const SystemModel& system, double n);

/// Solve E_s(N) = target for N (smallest integer size); the paper's
/// Table 6. Throws NumericError if the target is unreachable below n_max.
std::int64_t predicted_required_size(const OverheadModel& model,
                                     const SystemModel& system,
                                     double target_es,
                                     double n_max = 1e7);

/// Predicted ψ between two systems at a target efficiency: solve the
/// required sizes on both, then apply Theorem 1 with the model's t0/To.
/// The paper's Table 7.
double predicted_scalability(const OverheadModel& model,
                             const SystemModel& from, const SystemModel& to,
                             double target_es);

}  // namespace hetscale::predict
