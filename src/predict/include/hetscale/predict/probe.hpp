// Communication-parameter probes (paper §4.5: "We have measured the
// parameters ... on Sunwulf").
//
// The CommModel is *measured* from micro-benchmarks run through the full
// simulator stack — not read out of the network model's internals — so the
// prediction pipeline exercises the same measure-then-model workflow the
// paper used on real hardware. Tests cross-validate the fitted parameters
// against the network model's closed forms.
#pragma once

#include "hetscale/machine/cluster.hpp"
#include "hetscale/net/network.hpp"
#include "hetscale/predict/models.hpp"
#include "hetscale/scal/combination.hpp"

namespace hetscale::predict {

struct ProbeConfig {
  machine::NodeSpec node;  ///< node type the probe ensembles are built from
  scal::NetworkKind network = scal::NetworkKind::kSwitched;
  net::NetworkParams params{};
  int collective_ranks = 8;    ///< p used for bcast/barrier probes
  /// Short-message fit abscissae (must stay below the runtime's large-
  /// broadcast threshold so one algorithm is fitted).
  double bytes_small = 1.0e3;
  double bytes_large = 8.0e3;
  /// Long-message fit abscissae (at/above the threshold).
  double bytes_xl_small = 1.0e5;
  double bytes_xl_large = 1.0e6;
};

/// Measure one-way point-to-point time for a message of `bytes` (2 ranks).
double measure_send_time(const ProbeConfig& config, double bytes);

/// Measure flat-tree broadcast completion (max over ranks) for `bytes`.
double measure_bcast_time(const ProbeConfig& config, int ranks, double bytes);

/// Measure barrier completion (max over ranks).
double measure_barrier_time(const ProbeConfig& config, int ranks);

/// Fit the full CommModel from the probes above.
CommModel probe_comm_model(const ProbeConfig& config);

/// Assemble the SystemModel of a cluster: p, marked speed (Definition 2),
/// rank-0 speed, and the given measured communication model.
SystemModel system_model_for(const machine::Cluster& cluster,
                             const CommModel& comm);

}  // namespace hetscale::predict
