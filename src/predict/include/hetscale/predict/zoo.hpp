// The scalability-model zoo — fittable rivals to the paper's analytic
// prediction.
//
// The paper predicts heterogeneous scalability from one analytic overhead
// model (Theorem 1 / models.hpp). The literature offers ready-made rivals
// that can be *fitted* to the same measured isospeed data instead:
//
//   * usl — Gunther's Universal Scalability Law, capacity as a rational
//     function of p:  E_s(p) = e0 / (1 + sigma (p-1) + kappa p (p-1)),
//     with sigma the contention and kappa the coherency term. Deliberately
//     blind to N — the ranking shows what that costs on isospeed data.
//   * granularity — Kwiatkowski-style computation/communication
//     granularity ratio G = n^b / (c p^a):  E_s(p, n) = e0 / (1 + 1/G)
//       = e0 / (1 + c p^a / n^b).
//   * bsf — Sokolinsky's BSF (bulk-synchronous farm) cost model for
//     iterative master-worker algorithms: overhead flops linear plus
//     quadratic in p against the workload,
//       E_s(p, n) = e0 / (1 + (u p + v p^2) / W(n)),
//     with W the point's measured workload in flops (u, v in flops).
//   * heet — HEET-style heterogeneity scoring over the rank-speed vector:
//     the granularity overhead coefficient grows with the cluster's
//     heterogeneity score h (scal::heterogeneity_score),
//       E_s(p, n) = e0 / (1 + (a + b h) (p-1) / n).
//
// Every model predicts speed-efficiency E_s from a scal::FitPoint and a
// small parameter vector, fitted with the deterministic Levenberg-
// Marquardt solver (fitter.hpp). Evaluation is guarded: non-finite model
// output is mapped to 0 so a pathological parameter vector can never leak
// NaN/Inf into reports (tested).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "hetscale/predict/fitter.hpp"
#include "hetscale/scal/fit_study.hpp"

namespace hetscale::predict {

/// A fittable scalability model: name, parameter vector, E_s prediction.
class ScalabilityModel {
 public:
  virtual ~ScalabilityModel() = default;

  virtual const std::string& name() const = 0;
  virtual const std::vector<std::string>& parameter_names() const = 0;

  /// Deterministic starting point derived from the dataset alone.
  virtual std::vector<double> initial_guess(
      const scal::FitDataset& data) const = 0;

  /// Project a candidate parameter vector onto the model's box constraints
  /// (the fitter applies this to every step).
  virtual void clamp(std::span<double> params) const = 0;

  /// Predicted E_s at one measured point. May return non-finite values for
  /// hostile parameters; use guarded_predict anywhere the result is
  /// reported or compared.
  virtual double predict(const scal::FitPoint& point,
                         std::span<const double> params) const = 0;
};

/// predict() with a NaN/Inf guard: non-finite model output becomes 0.0 (a
/// maximally wrong efficiency, never a poisoned report).
double guarded_predict(const ScalabilityModel& model,
                       const scal::FitPoint& point,
                       std::span<const double> params);

/// The four zoo models, in canonical order: usl, granularity, bsf, heet.
/// Static instances — valid for the process lifetime.
std::span<const ScalabilityModel* const> model_zoo();

/// Find a zoo model by name, or nullptr.
const ScalabilityModel* find_model(const std::string& name);

struct ModelFitResult {
  std::vector<double> params;
  double rmse = 0.0;  ///< in-sample RMSE of E_s over the dataset
};

/// Fit the model to the dataset (deterministic LM from the model's own
/// initial guess).
ModelFitResult fit_scalability_model(const ScalabilityModel& model,
                                     const scal::FitDataset& data,
                                     const LmOptions& options = {});

struct CrossValidation {
  double rmse = 0.0;          ///< RMSE of the held-out prediction errors
  double max_abs_error = 0.0; ///< worst held-out |error|
};

/// Leave-one-ladder-point-out cross-validation: refit on all points but
/// one, score the held-out point, repeat for every point. For datasets
/// with fewer than two points this degenerates to the in-sample error of
/// the full fit (a single-point ladder cannot be held out).
CrossValidation leave_one_out_cv(const ScalabilityModel& model,
                                 const scal::FitDataset& data,
                                 const LmOptions& options = {});

}  // namespace hetscale::predict
