// The iso-solver: "the required matrix size to obtain a specified
// speed-efficiency" (paper §4.4, Fig. 1 / Table 3).
//
// Two methods, as in §3.5:
//   * kDirectSearch — measure the combination directly; since E_s(N) is
//     non-decreasing in N over the usable range, a doubling bracket plus
//     integer bisection finds the smallest N with E_s(N) >= target in
//     O(log N) simulated runs.
//   * kTrendLine — the paper's method: sample E_s at a handful of sizes,
//     fit a polynomial trend line, read the target crossing off the trend,
//     then verify by measuring at the read-off size (the "light gray dot"
//     of Fig. 1).
#pragma once

#include <cstdint>

#include "hetscale/scal/combination.hpp"

namespace hetscale::scal {

struct IsoSolveOptions {
  enum class Method { kDirectSearch, kTrendLine };
  Method method = Method::kDirectSearch;

  std::int64_t n_min = 4;             ///< search floor
  std::int64_t n_max = 1 << 22;       ///< search ceiling (fail beyond)

  // kTrendLine parameters:
  std::size_t trend_degree = 3;
  std::size_t trend_samples = 10;     ///< geometric ladder of sample sizes
  std::int64_t trend_n_lo = 32;       ///< sampling window
  std::int64_t trend_n_hi = 2048;

  /// Optional worker pool (not owned). When set with jobs > 1, the solver
  /// submits its measurements as batches: the trend-line ladder is sampled
  /// concurrently, and direct-search refinement becomes *speculative*
  /// bisection — each wave measures the next levels of the bisection
  /// decision tree concurrently, then replays the sequential decisions, so
  /// the found N and measured E_s are identical to the sequential solve on
  /// any E_s(n). The doubling bracket itself stays sequential — simulation
  /// cost grows superlinearly with N, so speculating doublings ahead would
  /// cost more than it hides.
  run::Runner* runner = nullptr;
};

struct IsoSolveResult {
  bool found = false;
  std::int64_t n = -1;        ///< required problem size
  double achieved_es = 0.0;   ///< measured E_s at n (the verification run)
  double target_es = 0.0;
};

/// Smallest problem size at which the combination achieves the target
/// speed-efficiency. found == false if the target is unreachable below
/// options.n_max (the combination is then *unscalable* at that efficiency).
IsoSolveResult required_problem_size(Combination& combination,
                                     double target_es,
                                     const IsoSolveOptions& options = {});

}  // namespace hetscale::scal
