// Scalability versus execution time (paper ref [8], X.H. Sun, JPDC 2002).
//
// Scalability and execution time are two views of the same data: under
// isospeed-efficiency scaling, T' = W' / (E_s · C'), so a more scalable
// combination (smaller W' growth) has the smaller scaled execution time.
// This module exposes that relation plus *crossing-point analysis*: the
// problem size at which one combination starts beating another outright.
#pragma once

#include <cstdint>

#include "hetscale/scal/combination.hpp"

namespace hetscale::scal {

/// Execution time at an iso-efficiency operating point: T = W / (E_s · C).
double iso_efficiency_time(double work, double marked_speed,
                           double speed_efficiency);

/// Ref [8]'s headline relation, checkable from a solved scaling step: the
/// ratio of scaled execution times of two combinations that started from
/// the same time and efficiency equals the inverse ratio of their ψ values.
/// Returns T_a' / T_b' given the two scalabilities.
double scaled_time_ratio(double psi_a, double psi_b);

/// Crossing-point analysis between two combinations measured at the SAME
/// problem sizes (e.g. the same algorithm on a small and a big system):
/// the smallest n in [n_lo, n_hi] where `b` is at least as fast as `a`.
struct CrossingPoint {
  bool exists = false;
  std::int64_t n = -1;        ///< first size where T_b <= T_a
  double time_a = 0.0;        ///< times at the crossing
  double time_b = 0.0;
};

/// Finds the crossing by galloping + integer bisection on the (assumed
/// eventually-monotone) time difference. O(log range) measurements.
CrossingPoint find_time_crossing(Combination& a, Combination& b,
                                 std::int64_t n_lo, std::int64_t n_hi);

}  // namespace hetscale::scal
