// Algorithm-system combinations — the unit the metric is defined over.
//
// "An algorithm-system combination is scalable if the achieved
//  speed-efficiency of the combination can remain constant with increasing
//  system ensemble size, provided the problem size can be increased with
//  the system size." (Definition 4)
//
// A Combination bundles an algorithm with a concrete (simulated) system and
// can be *measured* at any problem size N. Measurements are cached: the
// marked speed is a constant of the study (Definition 1), and the simulator
// is deterministic, so re-measuring the same N is pure waste.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "hetscale/algos/sort.hpp"
#include "hetscale/algos/spmv.hpp"
#include "hetscale/machine/cluster.hpp"
#include "hetscale/net/network.hpp"
#include "hetscale/numeric/polynomial.hpp"
#include "hetscale/vmpi/machine.hpp"

namespace hetscale::run {
class Runner;
}  // namespace hetscale::run

namespace hetscale::scal {

/// One measured point of a combination (a row of the paper's Table 2).
struct Measurement {
  std::int64_t n = 0;
  double work_flops = 0.0;
  double seconds = 0.0;
  double speed_flops = 0.0;       ///< S = W/T
  double speed_efficiency = 0.0;  ///< E_s = S/C
  double overhead_s = 0.0;        ///< critical-path T_o (see RunResult)
};

enum class NetworkKind { kSharedBus, kSwitched };

class ClusterCombination;
struct ProfiledRun;  // scal/profile.hpp
ProfiledRun profile_run(ClusterCombination& combination, std::int64_t n);

/// Build a single-shot machine for one run of a combination. The tuning
/// default is the paper-era flat collective family: every measurement path
/// that predates the tree collectives pins legacy behaviour unless its
/// combination asks otherwise.
vmpi::Machine make_machine(
    const machine::Cluster& cluster, NetworkKind kind,
    const net::NetworkParams& params,
    const vmpi::CollectiveTuning& tuning = vmpi::CollectiveTuning::legacy_flat());

class Combination {
 public:
  virtual ~Combination() = default;

  virtual const std::string& name() const = 0;

  /// C — the system's marked speed (flop/s), a constant of the study.
  virtual double marked_speed() const = 0;

  /// W(N) — the workload polynomial of the algorithm.
  virtual double work(std::int64_t n) const = 0;

  /// Run (simulate) the combination at problem size N; cached.
  virtual const Measurement& measure(std::int64_t n) = 0;

  /// Measure a batch of sizes, returned in request order. The base
  /// implementation is the sequential fallback (a measure() loop);
  /// combinations whose runs are independent override it to execute the
  /// uncached sizes concurrently on the runner. Results are merged in
  /// request order, so the outcome is bit-identical to sequential.
  virtual std::vector<Measurement> measure_many(
      std::span<const std::int64_t> sizes, run::Runner& runner);
};

/// Common machinery for combinations that run on a simulated cluster.
class ClusterCombination : public Combination {
 public:
  struct Config {
    machine::Cluster cluster;
    /// Default matches the modeled testbed: a switched 100 Mb Ethernet
    /// (per-node injection serialization). Shared-bus is the ablation.
    NetworkKind network = NetworkKind::kSwitched;
    net::NetworkParams net_params{};
    bool with_data = false;  ///< timing-only by default for sweeps
    /// Collective algorithm family the combination's machines run. Defaults
    /// to the paper-era flat family so every pre-existing scenario (and its
    /// golden artifact) is byte-identical to the original runs; large-p
    /// studies opt into vmpi::CollectiveTuning::tree(). Part of the
    /// measurement fingerprint — flat and tree runs never alias in the
    /// store.
    vmpi::CollectiveTuning tuning = vmpi::CollectiveTuning::legacy_flat();
  };

  ClusterCombination(std::string name, Config config);

  const std::string& name() const override { return name_; }
  double marked_speed() const override { return marked_speed_; }
  const Measurement& measure(std::int64_t n) override;

  /// Uncached sizes are simulated concurrently: every run builds its own
  /// machine and only reads shared state, so simulations are independent;
  /// the cache is filled on the calling thread in request order.
  std::vector<Measurement> measure_many(std::span<const std::int64_t> sizes,
                                        run::Runner& runner) override;

  const machine::Cluster& cluster() const { return config_.cluster; }
  const std::vector<double>& rank_speeds() const { return rank_speeds_; }
  int processor_count() const { return config_.cluster.processor_count(); }

 protected:
  /// Run the algorithm once on a fresh machine; return (work, elapsed,
  /// critical-path overhead). Must be const: it may execute on several
  /// worker threads at once for different machines.
  struct RunOutcome {
    double work_flops = 0.0;
    double seconds = 0.0;
    double overhead_s = 0.0;
  };
  virtual RunOutcome run_once(vmpi::Machine& machine, std::int64_t n) const = 0;

  /// Everything about the *algorithm* that determines a run, e.g.
  /// "jacobi:sweeps=50". Combined with the cluster/network config into the
  /// MeasurementStore fingerprint, so combinations measured under different
  /// display names still share measurements.
  virtual std::string algo_key() const = 0;

  const Config& config() const { return config_; }

 private:
  /// The fault study (scal/fault_study.hpp) replays run_once on a machine
  /// whose network is wrapped in a fault::DegradedNetwork with a
  /// fault::Injector attached — it needs the run hook and the config.
  friend class FaultedCombination;

  /// The profiled measurement path (scal/profile.hpp) re-runs compute()'s
  /// recipe on its own machine so it can keep the tracer.
  friend struct ProfiledRun;
  friend ProfiledRun profile_run(ClusterCombination& combination,
                                 std::int64_t n);

  /// One full simulation at size n — pure w.r.t. this object.
  Measurement compute(std::int64_t n) const;

  /// The MeasurementStore fingerprint, built lazily (algo_key() is virtual,
  /// so it cannot be computed in the constructor).
  const std::string& store_key();

  std::string name_;
  Config config_;
  double marked_speed_ = 0.0;        ///< measured once, then constant
  std::vector<double> rank_speeds_;  ///< per-rank marked speeds
  std::map<std::int64_t, Measurement> cache_;
  std::string store_key_;
};

/// GE on a cluster (the paper's first combination).
class GeCombination final : public ClusterCombination {
 public:
  GeCombination(std::string name, Config config);
  double work(std::int64_t n) const override;

 private:
  RunOutcome run_once(vmpi::Machine& machine, std::int64_t n) const override;
  std::string algo_key() const override { return "ge"; }
};

/// MM on a cluster (the paper's second combination).
class MmCombination final : public ClusterCombination {
 public:
  MmCombination(std::string name, Config config);
  double work(std::int64_t n) const override;

 private:
  RunOutcome run_once(vmpi::Machine& machine, std::int64_t n) const override;
  std::string algo_key() const override { return "mm"; }
};

/// Sample sort on a cluster (extension; see algos/sort.hpp). Always runs
/// on real keys — its load balance is data-dependent by nature.
class SortCombination final : public ClusterCombination {
 public:
  SortCombination(std::string name, Config config,
                  algos::SortSplitters splitters =
                      algos::SortSplitters::kSpeedProportional);
  double work(std::int64_t n) const override;

 private:
  RunOutcome run_once(vmpi::Machine& machine, std::int64_t n) const override;
  std::string algo_key() const override;
  algos::SortSplitters splitters_;
};

/// Jacobi on a cluster (extension; see algos/jacobi.hpp).
class JacobiCombination final : public ClusterCombination {
 public:
  JacobiCombination(std::string name, Config config, std::int64_t sweeps);
  double work(std::int64_t n) const override;

 private:
  RunOutcome run_once(vmpi::Machine& machine, std::int64_t n) const override;
  std::string algo_key() const override;
  std::int64_t sweeps_;
};

/// SUMMA MM on a 2D speed-balanced process grid (see algos/summa.hpp).
/// Same workload polynomial as MmCombination — the comparison between the
/// two is purely about the communication pattern.
class SummaCombination final : public ClusterCombination {
 public:
  SummaCombination(std::string name, Config config, std::int64_t tile = 64);
  double work(std::int64_t n) const override;

 private:
  RunOutcome run_once(vmpi::Machine& machine, std::int64_t n) const override;
  std::string algo_key() const override;
  std::int64_t tile_;
};

/// Panel-blocked GE with partial pivoting (see algos/ge_pivot.hpp). The
/// measurement's work is the useful GE workload; the pivot search and the
/// redundant panel reconstruction are charged overhead, so its E_s sits
/// below pivot-free GE by construction.
class GePivotCombination final : public ClusterCombination {
 public:
  GePivotCombination(std::string name, Config config, std::int64_t panel = 32);
  double work(std::int64_t n) const override;

 private:
  RunOutcome run_once(vmpi::Machine& machine, std::int64_t n) const override;
  std::string algo_key() const override;
  std::int64_t panel_;
};

/// Iterated CSR SpMV (see algos/spmv.hpp) — memory-bound and
/// load-imbalanced; the distribution choice (heterogeneous vs homogeneous
/// row blocks) is the ablation axis.
class SpmvCombination final : public ClusterCombination {
 public:
  SpmvCombination(std::string name, Config config, std::int64_t sweeps = 50,
                  algos::SpmvDistribution distribution =
                      algos::SpmvDistribution::kHeterogeneousBlock);
  double work(std::int64_t n) const override;  ///< sweeps * 2 * nnz(n)

  /// nnz-weighted dist::imbalance of the row split this combination uses at
  /// size n — a pure function of the split, no simulation.
  double work_imbalance(std::int64_t n) const;

 private:
  RunOutcome run_once(vmpi::Machine& machine, std::int64_t n) const override;
  std::string algo_key() const override;
  std::int64_t sweeps_;
  algos::SpmvDistribution distribution_;
};

/// A sampled speed-efficiency curve (the data behind Figs. 1–2).
struct EfficiencyCurve {
  std::string label;
  std::vector<Measurement> samples;

  std::vector<double> sizes() const;
  std::vector<double> efficiencies() const;
};

/// Measure the combination at each size.
EfficiencyCurve sample_efficiency_curve(Combination& combination,
                                        std::span<const std::int64_t> sizes);

/// Measure the combination at each size as one batch on the runner —
/// byte-identical samples to the sequential overload, in any jobs count.
EfficiencyCurve sample_efficiency_curve(Combination& combination,
                                        std::span<const std::int64_t> sizes,
                                        run::Runner& runner);

/// Least-squares polynomial trend line through (N, E_s) samples — the
/// paper's "Poly." curves in Figs. 1 and 2.
numeric::Polynomial fit_trend(const EfficiencyCurve& curve,
                              std::size_t degree = 3);

}  // namespace hetscale::scal
