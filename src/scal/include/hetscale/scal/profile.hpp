// Profiled measurement — one combination run with full instrumentation.
//
// profile_run() measures a single problem size the same way
// ClusterCombination::measure() does, but under a private obs::Profiler,
// and returns the run's instrumentation alongside the Measurement: the
// time budget (measured t0/To), the complete obs::RunProfile, the
// per-rank utilization table, and the Chrome trace. This is what the CLI's
// `profile` command and the profile scenarios consume; the cache is
// bypassed (the simulator is deterministic, so the Measurement matches
// what measure() would return).
#pragma once

#include <cstdint>
#include <string>

#include "hetscale/obs/profiler.hpp"
#include "hetscale/scal/combination.hpp"

namespace hetscale::scal {

struct ProfiledRun {
  Measurement measurement;
  obs::RunProfile profile;  ///< budget, traffic, des/net/fault totals
  std::string utilization;  ///< per-rank compute/comm/idle table
  std::string chrome_trace; ///< Chrome trace-event JSON

  const obs::TimeBudget& budget() const { return profile.budget; }
};

/// Measure `combination` at size `n` on a fresh machine with profiling on.
ProfiledRun profile_run(ClusterCombination& combination, std::int64_t n);

}  // namespace hetscale::scal
