// FitStudy — measured (combination, p, n) -> E_s datasets for model fitting.
//
// The model zoo (predict/zoo.hpp) fits rival scalability models to the same
// isospeed data the paper's tables are built from. This header is the data
// side of that study: it walks a ladder of combinations, measures each at a
// set of problem sizes through measure_many (so uncached points run
// concurrently on the Runner and everything is memoized through the
// MeasurementStore), and flattens the results into per-point rows carrying
// everything a model may condition on — processor count, marked speed, the
// root rank's speed, the workload, and a heterogeneity score of the
// rank-speed vector. Gathering is bit-identical across --jobs because
// measure_many is.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "hetscale/scal/combination.hpp"

namespace hetscale::scal {

/// One measured ladder point, flattened for model fitting. `p` and the
/// speed fields describe the system; `speed_efficiency` is the fit target.
struct FitPoint {
  std::string system;             ///< combination display name
  int p = 0;                      ///< processor count
  std::int64_t n = 0;             ///< problem size
  double work_flops = 0.0;        ///< W(N)
  double seconds = 0.0;           ///< measured T
  double speed_efficiency = 0.0;  ///< measured E_s (the fit target)
  double marked_speed = 0.0;      ///< C (flop/s)
  double root_speed = 0.0;        ///< rank 0's marked speed
  double het_score = 0.0;         ///< heterogeneity_score(rank_speeds)
};

/// A gathered dataset: every ladder rung measured at every size, in
/// ladder-major, size-minor order (deterministic).
struct FitDataset {
  std::string algo;  ///< display key, e.g. "ge"
  std::vector<FitPoint> points;

  /// Distinct processor counts, ascending.
  std::vector<int> processor_counts() const;

  /// Distinct problem sizes, ascending.
  std::vector<std::int64_t> sizes() const;
};

/// HEET-style heterogeneity score of a rank-speed vector:
///   h = 1 - (sum c_i) / (p * max c_i),
/// the fraction of the cluster's peak-uniform capacity lost to speed
/// spread. 0 for a homogeneous cluster, -> 1 as one rank dominates.
/// Empty or all-zero speeds score 0.
double heterogeneity_score(std::span<const double> rank_speeds);

/// Measure every ladder combination at every size and flatten the results.
/// With a runner, each rung's uncached sizes are simulated as one batch;
/// rungs are visited in order, so the dataset is bit-identical at any jobs
/// count. Measurements are memoized through the MeasurementStore exactly as
/// in measure()/measure_many.
FitDataset gather_fit_points(std::string algo,
                             std::span<ClusterCombination* const> ladder,
                             std::span<const std::int64_t> sizes,
                             run::Runner* runner = nullptr);

}  // namespace hetscale::scal
