// MeasurementStore — a process-wide memo of combination measurements.
//
// The simulator is deterministic: a (configuration, N) pair always produces
// the same Measurement, bit for bit. Scenarios, however, each build their
// own Combination objects — the per-object cache in ClusterCombination
// cannot see that table3, table4, and table7 all simulate GE on the same
// ensembles. The store closes that gap: measurements are memoized under a
// *configuration fingerprint* (algorithm + cluster + network + data mode —
// everything that determines the run, and nothing that doesn't, so
// same-config combinations share regardless of display name), keyed by N.
//
// The store can be serialized to disk and reloaded, so repeated CLI
// invocations skip simulations they have already paid for. The format is
// versioned line-oriented text with %.17g doubles (exact round-trip); a
// version bump invalidates stale files wholesale.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "hetscale/scal/combination.hpp"

namespace hetscale::scal {

class MeasurementStore {
 public:
  /// The process-wide instance used by ClusterCombination. Enabled by
  /// default; `--no-measure-cache` turns it off for a CLI invocation.
  static MeasurementStore& global();

  MeasurementStore() = default;
  MeasurementStore(const MeasurementStore&) = delete;
  MeasurementStore& operator=(const MeasurementStore&) = delete;

  bool enabled() const;
  void set_enabled(bool enabled);

  /// Copy the stored measurement for (key, n) into `out`; false on miss.
  bool try_get(const std::string& key, std::int64_t n, Measurement& out);

  /// Memoize one measurement (last write wins — values for one key are
  /// identical by construction).
  void put(const std::string& key, std::int64_t n, const Measurement& m);

  std::size_t size() const;
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  void clear();

  void save(std::ostream& os) const;
  bool save_file(const std::string& path) const;

  /// Merge entries from a previously saved stream; returns false (and loads
  /// nothing) on a missing/garbled header or version mismatch.
  bool load(std::istream& is);
  bool load_file(const std::string& path);

 private:
  mutable std::mutex mutex_;
  bool enabled_ = true;
  std::map<std::string, std::map<std::int64_t, Measurement>> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// The canonical fingerprint of a measurable configuration. Every field
/// that influences a simulated run is folded in (node specs with full
/// precision, network kind and parameters, data mode, the collective
/// tuning, and the algorithm's own key); scenario/display names are
/// deliberately excluded. The paper-era legacy_flat tuning contributes no
/// component, so keys written before collective tuning existed keep
/// resolving to the same measurements.
std::string config_fingerprint(
    std::string_view algo_key, const machine::Cluster& cluster,
    NetworkKind network, const net::NetworkParams& params, bool with_data,
    const vmpi::CollectiveTuning& tuning = vmpi::CollectiveTuning::legacy_flat());

}  // namespace hetscale::scal
