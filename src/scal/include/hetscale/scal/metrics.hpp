// The isospeed-efficiency scalability metric (paper §3, Definitions 3–4).
//
// Notation follows the paper: W is work (flops), T execution time, C the
// system's marked speed (Definition 2), S = W/T the achieved speed,
// E_s = S/C the speed-efficiency, and
//
//     ψ(C, C') = (C' · W) / (C · W')
//
// the isospeed-efficiency scalability, where W' is the scaled problem size
// that restores E_s on the scaled system C'. ψ = 1 is ideal; real
// combinations have ψ < 1. On a homogeneous system (C = p·C_i) ψ reduces to
// the classic Sun–Rover isospeed scalability (p'·W)/(p·W').
#pragma once

#include <cstdint>

namespace hetscale::scal {

/// Achieved speed S = W / T (Definition 3 prerequisite).
double achieved_speed(double work_flops, double seconds);

/// Speed-efficiency E_s = W / (T · C) (Definition 3).
double speed_efficiency(double work_flops, double seconds,
                        double marked_speed_flops);

/// The problem size that would hold E_s constant on an ideal system:
/// W'_ideal = W · C' / C.
double ideal_scaled_work(double c_from, double w_from, double c_to);

/// Isospeed-efficiency scalability ψ(C, C') = (C'·W) / (C·W')
/// (Definition 4 / §3.3). Equals 1 when W' is the ideal scaled work.
double isospeed_efficiency_scalability(double c_from, double w_from,
                                       double c_to, double w_to);

/// The homogeneous special case: Sun–Rover isospeed scalability
/// ψ(p, p') = (p'·W) / (p·W').
double isospeed_scalability(double p_from, double w_from, double p_to,
                            double w_to);

/// Verifies the isospeed-efficiency *condition* W/(T·C) == W'/(T'·C') up to
/// a relative tolerance — used by tests and by the iso-solver's acceptance
/// check.
bool isospeed_efficiency_condition_holds(double w_from, double t_from,
                                         double c_from, double w_to,
                                         double t_to, double c_to,
                                         double rel_tol = 0.05);

}  // namespace hetscale::scal
