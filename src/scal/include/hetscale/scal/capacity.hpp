// Memory-capacity-bounded scalability — connecting the isospeed-efficiency
// metric to Sun & Ni's memory-bounded speedup (paper ref [9]).
//
// Holding E_s constant requires *growing the problem*; real nodes have
// finite memory, so at some system size the required problem no longer
// fits and the combination becomes memory-bound at that efficiency. This
// module computes the largest feasible problem size from per-rank footprint
// models and clamps the iso-solver to it.
#pragma once

#include <cstdint>
#include <functional>

#include "hetscale/machine/cluster.hpp"
#include "hetscale/scal/iso_solver.hpp"

namespace hetscale::scal {

/// Bytes rank `rank` (of `p`) needs at problem size n.
using FootprintFn =
    std::function<double(std::int64_t n, int rank, int p)>;

/// Footprint of the parallel GE in algos/: process 0 holds the full system
/// twice (original copy for the residual + collected triangular form);
/// workers hold their ~1/p row share.
FootprintFn ge_footprint();

/// Parallel MM: process 0 holds A, B and C; every worker holds the full B
/// plus its A/C blocks — B replication is MM's capacity wall.
FootprintFn mm_footprint();

/// Parallel Jacobi: two full grids at the root, band + ghosts elsewhere.
FootprintFn jacobi_footprint();

/// Largest n (up to n_hi) whose footprint fits on every rank of the
/// cluster, using `usable_fraction` of each node's installed memory
/// (shared equally by the node's participating CPUs). Returns 0 if even
/// n = 1 does not fit.
std::int64_t max_feasible_size(const machine::Cluster& cluster,
                               const FootprintFn& footprint,
                               double usable_fraction = 0.8,
                               std::int64_t n_hi = 1 << 22);

struct BoundedSolveResult {
  IsoSolveResult solve;
  std::int64_t n_limit = 0;   ///< largest problem that fits
  bool memory_bound = false;  ///< target unreachable within n_limit
};

/// The iso-solver with the search ceiling clamped by memory capacity: if
/// the target efficiency needs a problem larger than fits, the combination
/// is memory-bound at that efficiency (and `solve.found` is false).
BoundedSolveResult memory_bounded_required_size(
    ClusterCombination& combination, double target_es,
    const FootprintFn& footprint, IsoSolveOptions options = {});

}  // namespace hetscale::scal
