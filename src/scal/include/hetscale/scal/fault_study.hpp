// Degraded-mode scalability analysis — the metric under a FaultPlan.
//
// A FaultedCombination wraps a ClusterCombination and replays its algorithm
// on a machine whose network is wrapped in a fault::DegradedNetwork and
// whose runtime consults a fault::Injector — same algorithm, same cluster,
// same marked speed, but slowdowns, link faults, message loss, and
// crash/restart are live. Because it *is* a Combination, the whole healthy
// tool chain applies unchanged: required_problem_size finds the size that
// restores E_s on the faulty machine, scalability_series builds Tables 3-5
// under degradation, and ψ(healthy, faulty) quantifies what the faults cost
// in the metric's own currency.
//
// The fault overhead decomposition extends the paper's T = T_c + T_o on the
// critical path: the injector attributes its share of the added time to
// slowdown stretch, checkpoint cost, crash rework, and retry waits; the
// remainder (blocking on degraded peers, inflated wire time, contention) is
// reported as the residual.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "hetscale/fault/injector.hpp"
#include "hetscale/fault/plan.hpp"
#include "hetscale/scal/combination.hpp"

namespace hetscale::scal {

/// One measured point of a combination under a fault plan.
struct FaultyMeasurement {
  /// The standard measurement, with speed_efficiency against the *healthy*
  /// marked speed — "what did the faults cost against the machine we paid
  /// for".
  Measurement measurement;

  /// Time-averaged effective marked speed over this run: the sum of
  /// C_i · slowdown_factor_i(t), averaged over [0, T).
  double effective_marked_speed = 0.0;

  /// E_s against the effective marked speed — "how well did we use what
  /// the degraded machine actually offered".
  double degraded_es = 0.0;

  /// Injector accounting summed over ranks.
  fault::RankFaultStats fault_totals;

  /// Max over ranks of the injector's attributed time — the fault share of
  /// the critical path.
  double critical_path_fault_s = 0.0;
};

/// A combination running under a fault plan. The wrapped combination and
/// the plan must outlive this object.
class FaultedCombination final : public Combination {
 public:
  FaultedCombination(ClusterCombination& inner, const fault::FaultPlan& plan);

  const std::string& name() const override { return name_; }
  /// The healthy marked speed: C is a constant of the study, faults do not
  /// re-mark the machine (use effective_marked_speed for the degraded view).
  double marked_speed() const override;
  double work(std::int64_t n) const override;
  const Measurement& measure(std::int64_t n) override;

  /// Uncached sizes run concurrently on the runner, merged in request
  /// order — bit-identical to sequential at any jobs count (each run has
  /// its own machine and injector; the plan is shared read-only).
  std::vector<Measurement> measure_many(std::span<const std::int64_t> sizes,
                                        run::Runner& runner) override;

  /// The full degraded-mode detail behind measure(); cached.
  const FaultyMeasurement& measure_faulty(std::int64_t n);

  const fault::FaultPlan& plan() const { return *plan_; }
  ClusterCombination& inner() { return *inner_; }

 private:
  FaultyMeasurement compute(std::int64_t n) const;

  ClusterCombination* inner_;
  const fault::FaultPlan* plan_;
  std::string name_;
  std::map<std::int64_t, FaultyMeasurement> cache_;
};

/// Healthy-vs-faulty comparison at one problem size, with the added time
/// decomposed by cause.
struct FaultDecomposition {
  Measurement healthy;
  FaultyMeasurement faulty;

  /// T_faulty - T_healthy: what the plan cost in wall time.
  double fault_overhead_s = 0.0;

  /// The injector-attributed share of the critical path (slowdown stretch +
  /// checkpoints + rework + retry waits on the worst rank).
  double attributed_s = 0.0;

  /// fault_overhead_s - attributed_s: blocking on degraded peers, inflated
  /// wire occupancy, and contention — degradation the network model charges
  /// that no single rank's ledger shows.
  double residual_s = 0.0;

  /// ψ(C, C) with W' the faulty run's work at equal E_s footing — here
  /// simply the efficiency ratio E_s(faulty) / E_s(healthy), the scalar
  /// "fraction of healthy efficiency retained under the plan".
  double efficiency_retention = 0.0;
};

/// Measure `combination` at `n` healthy and under `plan`, and decompose.
FaultDecomposition decompose_faults(ClusterCombination& combination,
                                    std::int64_t n,
                                    const fault::FaultPlan& plan);

}  // namespace hetscale::scal
