// Baseline scalability metrics the paper compares against (§2, Related
// Work). Implemented so the ablation bench can put them side-by-side with
// isospeed-efficiency on identical runs:
//
//  * Speedup / parallel efficiency and the isoefficiency view (Kumar,
//    Grama, Gupta, Karypis [3]) — requires a *sequential* execution time,
//    which is exactly the practical weakness the paper calls out.
//  * Jogalekar–Woodside productivity-based scalability [5] — value
//    delivered per unit cost; needs a money cost model, not an intrinsic
//    property of the machine.
//  * Pastor–Bosque heterogeneous efficiency [7] — speedup over the
//    "equivalent processor count" relative to a reference node; inherits
//    the sequential-time requirement.
#pragma once

#include <span>

#include "hetscale/machine/cluster.hpp"

namespace hetscale::scal {

/// Speedup = T_seq / T_par.
double speedup(double t_seq, double t_par);

/// Parallel efficiency = speedup / p (the quantity isoefficiency holds
/// constant).
double parallel_efficiency(double t_seq, double t_par, int p);

/// Isoefficiency-style scalability between two operating points that hold
/// parallel efficiency constant: (p'·W)/(p·W') — same ratio form as
/// isospeed, but anchored on sequential time via the efficiency solve.
double isoefficiency_scalability(double p_from, double w_from, double p_to,
                                 double w_to);

// ---- Jogalekar–Woodside ----

/// Productivity F = (useful value delivered per second) / (cost per
/// second). The "value" here is achieved speed (flop/s) and cost is money.
double productivity(double value_per_s, double cost_per_s);

/// J-W scalability of a scaling step: productivity(scaled)/productivity(
/// base); "a system is scalable if productivity keeps pace with cost"
/// (>= ~1).
double jw_scalability(double productivity_base, double productivity_scaled);

/// A simple rental-cost model: dollars per hour proportional to each
/// node's marked-speed-class rate. `dollars_per_mflops_hour` prices one
/// sustained Mflop/s for an hour. Returns cost per *second* of the
/// participating processors.
double cluster_cost_per_s(const machine::Cluster& cluster,
                          double dollars_per_mflops_hour);

// ---- Pastor–Bosque ----

/// Equivalent processor count of a heterogeneous ensemble relative to a
/// reference node speed: Σ_i speeds[i] / reference_speed.
double equivalent_processors(std::span<const double> speeds,
                             double reference_speed);

/// Heterogeneous efficiency: speedup over the reference node's sequential
/// time, divided by the equivalent processor count.
double pastor_bosque_efficiency(double t_seq_ref, double t_par,
                                std::span<const double> speeds,
                                double reference_speed);

}  // namespace hetscale::scal
