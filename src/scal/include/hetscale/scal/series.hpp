// Scalability series over a ladder of system sizes (paper Tables 3–5).
//
// Given combinations of the same algorithm on successively larger systems
// and a target speed-efficiency, compute for each system the required
// problem size, and between consecutive systems the isospeed-efficiency
// scalability ψ — exactly how Tables 3/4 (GE) and 5 (MM) are built.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "hetscale/scal/combination.hpp"
#include "hetscale/scal/iso_solver.hpp"

namespace hetscale::scal {

/// One system's row of Table 3: the operating point at the target E_s.
struct OperatingPoint {
  std::string system;
  double marked_speed = 0.0;  ///< C (flop/s)
  std::int64_t n = -1;        ///< required problem size
  double work = 0.0;          ///< W(N)
  double achieved_es = 0.0;
  bool found = false;
};

/// One step of Table 4/5: ψ between consecutive systems.
struct ScalabilityStep {
  std::string from;
  std::string to;
  double psi = 0.0;
};

struct SeriesReport {
  double target_es = 0.0;
  std::vector<OperatingPoint> points;
  std::vector<ScalabilityStep> steps;  ///< points.size() - 1 entries

  /// Cumulative scalability from the first system to the last found one:
  /// the product of the step ψ values (== ψ(C_first, C_last)).
  double cumulative_psi() const;
};

/// Build the series. Combinations must be ordered by increasing system size.
/// Systems where the target cannot be reached get found == false and no
/// outgoing step.
///
/// With a runner (jobs > 1), the per-system iso-solves run as one batch —
/// they are independent simulations — and the report is assembled from the
/// batch in ladder order, so it is bit-identical to the sequential build.
/// An iso-solve submitted from a batch worker runs inline, so any runner in
/// `solve` only adds parallelism when this outer batch is sequential.
SeriesReport scalability_series(std::span<Combination* const> combinations,
                                double target_es,
                                const IsoSolveOptions& solve = {},
                                run::Runner* runner = nullptr);

}  // namespace hetscale::scal
