#include "hetscale/scal/combination.hpp"

#include <algorithm>
#include <utility>

#include "hetscale/algos/ge.hpp"
#include "hetscale/algos/ge_pivot.hpp"
#include "hetscale/algos/jacobi.hpp"
#include "hetscale/algos/mm.hpp"
#include "hetscale/algos/sort.hpp"
#include "hetscale/algos/summa.hpp"
#include "hetscale/dist/distribution.hpp"
#include "hetscale/marked/suite.hpp"
#include "hetscale/numeric/linsolve.hpp"
#include "hetscale/run/runner.hpp"
#include "hetscale/scal/measure_store.hpp"
#include "hetscale/scal/metrics.hpp"
#include "hetscale/support/error.hpp"

namespace hetscale::scal {

std::vector<Measurement> Combination::measure_many(
    std::span<const std::int64_t> sizes, run::Runner& /*runner*/) {
  // Sequential fallback for combinations that cannot promise independent
  // concurrent runs.
  std::vector<Measurement> out;
  out.reserve(sizes.size());
  for (const auto n : sizes) out.push_back(measure(n));
  return out;
}

vmpi::Machine make_machine(const machine::Cluster& cluster, NetworkKind kind,
                           const net::NetworkParams& params,
                           const vmpi::CollectiveTuning& tuning) {
  if (kind == NetworkKind::kSharedBus) {
    return vmpi::Machine::shared_bus(cluster, params, tuning);
  }
  return vmpi::Machine::switched(cluster, params, tuning);
}

ClusterCombination::ClusterCombination(std::string name, Config config)
    : name_(std::move(name)), config_(std::move(config)) {
  rank_speeds_ = marked::rank_marked_speeds(config_.cluster);
  marked_speed_ = 0.0;
  for (double c : rank_speeds_) marked_speed_ += c;
}

const std::string& ClusterCombination::store_key() {
  // Lazy: algo_key() is virtual and cannot be called from the constructor.
  if (store_key_.empty()) {
    store_key_ = config_fingerprint(algo_key(), config_.cluster,
                                    config_.network, config_.net_params,
                                    config_.with_data, config_.tuning);
  }
  return store_key_;
}

const Measurement& ClusterCombination::measure(std::int64_t n) {
  // Single probe: try_emplace both answers membership and reserves the
  // slot, so hit and miss each cost one tree walk.
  const auto [it, inserted] = cache_.try_emplace(n);
  if (!inserted) return it->second;
  auto& store = MeasurementStore::global();
  if (store.enabled() && store.try_get(store_key(), n, it->second)) {
    return it->second;
  }
  try {
    it->second = compute(n);
  } catch (...) {
    cache_.erase(it);  // don't leave a default-constructed placeholder
    throw;
  }
  if (store.enabled()) store.put(store_key(), n, it->second);
  return it->second;
}

Measurement ClusterCombination::compute(std::int64_t n) const {
  HETSCALE_REQUIRE(n >= 1, "problem size must be >= 1");
  auto machine = make_machine(config_.cluster, config_.network,
                              config_.net_params, config_.tuning);
  const RunOutcome outcome = run_once(machine, n);

  Measurement m;
  m.n = n;
  m.work_flops = outcome.work_flops;
  m.seconds = outcome.seconds;
  m.speed_flops = achieved_speed(outcome.work_flops, outcome.seconds);
  m.speed_efficiency =
      speed_efficiency(outcome.work_flops, outcome.seconds, marked_speed_);
  m.overhead_s = outcome.overhead_s;
  return m;
}

std::vector<Measurement> ClusterCombination::measure_many(
    std::span<const std::int64_t> sizes, run::Runner& runner) {
  // Sizes still to simulate, deduplicated. A single try_emplace probe per
  // size answers membership and reserves the slot the result lands in.
  // std::map iterators stay valid across later insertions, so collecting
  // them is safe.
  auto& store = MeasurementStore::global();
  const bool use_store = store.enabled();
  using Slot = std::map<std::int64_t, Measurement>::iterator;
  std::vector<std::pair<std::int64_t, Slot>> batch;
  for (const auto n : sizes) {
    const auto [it, inserted] = cache_.try_emplace(n);
    if (!inserted) continue;
    if (use_store && store.try_get(store_key(), n, it->second)) continue;
    batch.emplace_back(n, it);
  }
  // Shape the batch for the work-stealing Runner: ascending by problem
  // size. Simulation cost grows with n, and the Runner deals indices
  // round-robin with each lane popping its own deque LIFO — so after this
  // sort every lane *starts* on its most expensive probe (LPT-style) and
  // lanes that run dry steal the cheap leftovers. Execution order never
  // shows in the output: results land through the collected map iterators
  // and the returned vector is rebuilt in request order below.
  std::stable_sort(
      batch.begin(), batch.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; });

  try {
    if (runner.jobs() > 1 && batch.size() > 1) {
      const auto computed = runner.map(
          batch.size(), [&](std::size_t i) { return compute(batch[i].first); });
      // Merge on the calling thread.
      for (std::size_t i = 0; i < batch.size(); ++i) {
        batch[i].second->second = computed[i];
      }
    } else {
      for (auto& [n, slot] : batch) slot->second = compute(n);
    }
  } catch (...) {
    for (auto& [n, slot] : batch) cache_.erase(slot);
    throw;
  }
  if (use_store) {
    for (const auto& [n, slot] : batch) {
      store.put(store_key(), n, slot->second);
    }
  }

  std::vector<Measurement> out;
  out.reserve(sizes.size());
  for (const auto n : sizes) out.push_back(cache_.at(n));
  return out;
}

GeCombination::GeCombination(std::string name, Config config)
    : ClusterCombination(std::move(name), std::move(config)) {}

double GeCombination::work(std::int64_t n) const {
  return numeric::ge_workload(static_cast<double>(n));
}

ClusterCombination::RunOutcome GeCombination::run_once(
    vmpi::Machine& machine, std::int64_t n) const {
  algos::GeOptions options;
  options.n = n;
  options.with_data = config().with_data;
  options.speeds = rank_speeds();
  const auto result = algos::run_parallel_ge(machine, options);
  return RunOutcome{result.work_flops, result.run.elapsed,
                    result.run.overhead_s()};
}

MmCombination::MmCombination(std::string name, Config config)
    : ClusterCombination(std::move(name), std::move(config)) {}

double MmCombination::work(std::int64_t n) const {
  return numeric::mm_workload(static_cast<double>(n));
}

ClusterCombination::RunOutcome MmCombination::run_once(
    vmpi::Machine& machine, std::int64_t n) const {
  algos::MmOptions options;
  options.n = n;
  options.with_data = config().with_data;
  options.speeds = rank_speeds();
  const auto result = algos::run_parallel_mm(machine, options);
  return RunOutcome{result.work_flops, result.run.elapsed,
                    result.run.overhead_s()};
}

SortCombination::SortCombination(std::string name, Config config,
                                 algos::SortSplitters splitters)
    : ClusterCombination(std::move(name), std::move(config)),
      splitters_(splitters) {}

double SortCombination::work(std::int64_t n) const {
  return algos::sort_workload(n);
}

std::string SortCombination::algo_key() const {
  return "sort:" + std::to_string(static_cast<int>(splitters_));
}

ClusterCombination::RunOutcome SortCombination::run_once(
    vmpi::Machine& machine, std::int64_t n) const {
  algos::SortOptions options;
  options.n = n;
  options.splitters = splitters_;
  options.speeds = rank_speeds();
  const auto result = algos::run_parallel_sort(machine, options);
  return RunOutcome{result.work_flops, result.run.elapsed,
                    result.run.overhead_s()};
}

JacobiCombination::JacobiCombination(std::string name, Config config,
                                     std::int64_t sweeps)
    : ClusterCombination(std::move(name), std::move(config)),
      sweeps_(sweeps) {
  HETSCALE_REQUIRE(sweeps_ >= 1, "Jacobi needs sweeps >= 1");
}

double JacobiCombination::work(std::int64_t n) const {
  return algos::jacobi_workload(n, sweeps_);
}

std::string JacobiCombination::algo_key() const {
  return "jacobi:sweeps=" + std::to_string(sweeps_);
}

ClusterCombination::RunOutcome JacobiCombination::run_once(
    vmpi::Machine& machine, std::int64_t n) const {
  algos::JacobiOptions options;
  options.n = n;
  options.sweeps = sweeps_;
  options.with_data = config().with_data;
  options.speeds = rank_speeds();
  const auto result = algos::run_parallel_jacobi(machine, options);
  return RunOutcome{result.work_flops, result.run.elapsed,
                    result.run.overhead_s()};
}

SummaCombination::SummaCombination(std::string name, Config config,
                                   std::int64_t tile)
    : ClusterCombination(std::move(name), std::move(config)), tile_(tile) {
  HETSCALE_REQUIRE(tile_ >= 1, "SUMMA needs tile >= 1");
}

double SummaCombination::work(std::int64_t n) const {
  return numeric::mm_workload(static_cast<double>(n));
}

std::string SummaCombination::algo_key() const {
  return "summa:tile=" + std::to_string(tile_);
}

ClusterCombination::RunOutcome SummaCombination::run_once(
    vmpi::Machine& machine, std::int64_t n) const {
  algos::SummaOptions options;
  options.n = n;
  options.tile = tile_;
  options.with_data = config().with_data;
  options.speeds = rank_speeds();
  const auto result = algos::run_parallel_summa(machine, options);
  return RunOutcome{result.work_flops, result.run.elapsed,
                    result.run.overhead_s()};
}

GePivotCombination::GePivotCombination(std::string name, Config config,
                                       std::int64_t panel)
    : ClusterCombination(std::move(name), std::move(config)), panel_(panel) {
  HETSCALE_REQUIRE(panel_ >= 1, "pivoted GE needs panel >= 1");
}

double GePivotCombination::work(std::int64_t n) const {
  return numeric::ge_workload(static_cast<double>(n));
}

std::string GePivotCombination::algo_key() const {
  return "ge_pivot:panel=" + std::to_string(panel_);
}

ClusterCombination::RunOutcome GePivotCombination::run_once(
    vmpi::Machine& machine, std::int64_t n) const {
  algos::GePivotOptions options;
  options.n = n;
  options.panel = panel_;
  options.with_data = config().with_data;
  options.speeds = rank_speeds();
  const auto result = algos::run_parallel_ge_pivot(machine, options);
  return RunOutcome{result.work_flops, result.run.elapsed,
                    result.run.overhead_s()};
}

SpmvCombination::SpmvCombination(std::string name, Config config,
                                 std::int64_t sweeps,
                                 algos::SpmvDistribution distribution)
    : ClusterCombination(std::move(name), std::move(config)),
      sweeps_(sweeps),
      distribution_(distribution) {
  HETSCALE_REQUIRE(sweeps_ >= 1, "SpMV needs sweeps >= 1");
}

double SpmvCombination::work(std::int64_t n) const {
  const auto nnz =
      algos::make_synthetic_csr(n, algos::SpmvOptions{}.seed).nnz();
  return static_cast<double>(sweeps_) * 2.0 * static_cast<double>(nnz);
}

double SpmvCombination::work_imbalance(std::int64_t n) const {
  const auto& speeds = rank_speeds();
  const int p = static_cast<int>(speeds.size());
  const auto counts =
      distribution_ == algos::SpmvDistribution::kHeterogeneousBlock
          ? dist::het_block_counts(speeds, n)
          : dist::block_counts(p, n);
  const auto offsets = dist::block_offsets(counts);
  const auto csr = algos::make_synthetic_csr(n, algos::SpmvOptions{}.seed);
  std::vector<std::int64_t> nnz_counts(static_cast<std::size_t>(p));
  for (std::size_t i = 0; i < nnz_counts.size(); ++i) {
    nnz_counts[i] =
        csr.row_ptr[static_cast<std::size_t>(offsets[i + 1])] -
        csr.row_ptr[static_cast<std::size_t>(offsets[i])];
  }
  return dist::imbalance(speeds, nnz_counts);
}

std::string SpmvCombination::algo_key() const {
  return "spmv:sweeps=" + std::to_string(sweeps_) + ",dist=" +
         (distribution_ == algos::SpmvDistribution::kHeterogeneousBlock
              ? "het"
              : "hom");
}

ClusterCombination::RunOutcome SpmvCombination::run_once(
    vmpi::Machine& machine, std::int64_t n) const {
  algos::SpmvOptions options;
  options.n = n;
  options.sweeps = sweeps_;
  options.distribution = distribution_;
  options.with_data = config().with_data;
  options.speeds = rank_speeds();
  const auto result = algos::run_parallel_spmv(machine, options);
  return RunOutcome{result.work_flops, result.run.elapsed,
                    result.run.overhead_s()};
}

std::vector<double> EfficiencyCurve::sizes() const {
  std::vector<double> xs;
  xs.reserve(samples.size());
  for (const auto& m : samples) xs.push_back(static_cast<double>(m.n));
  return xs;
}

std::vector<double> EfficiencyCurve::efficiencies() const {
  std::vector<double> ys;
  ys.reserve(samples.size());
  for (const auto& m : samples) ys.push_back(m.speed_efficiency);
  return ys;
}

EfficiencyCurve sample_efficiency_curve(Combination& combination,
                                        std::span<const std::int64_t> sizes) {
  EfficiencyCurve curve;
  curve.label = combination.name();
  curve.samples.reserve(sizes.size());
  for (auto n : sizes) curve.samples.push_back(combination.measure(n));
  return curve;
}

EfficiencyCurve sample_efficiency_curve(Combination& combination,
                                        std::span<const std::int64_t> sizes,
                                        run::Runner& runner) {
  EfficiencyCurve curve;
  curve.label = combination.name();
  curve.samples = combination.measure_many(sizes, runner);
  return curve;
}

numeric::Polynomial fit_trend(const EfficiencyCurve& curve,
                              std::size_t degree) {
  return numeric::polyfit(curve.sizes(), curve.efficiencies(), degree);
}

}  // namespace hetscale::scal
