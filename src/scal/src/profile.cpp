#include "hetscale/scal/profile.hpp"

#include "hetscale/scal/metrics.hpp"
#include "hetscale/support/error.hpp"

namespace hetscale::scal {

ProfiledRun profile_run(ClusterCombination& combination, std::int64_t n) {
  HETSCALE_REQUIRE(n >= 1, "problem size must be >= 1");
  obs::Profiler profiler;
  ProfiledRun out;
  {
    obs::ProfilerScope scope(profiler);
    auto machine = make_machine(
        combination.config_.cluster, combination.config_.network,
        combination.config_.net_params, combination.config_.tuning);
    const auto outcome = combination.run_once(machine, n);

    Measurement& m = out.measurement;
    m.n = n;
    m.work_flops = outcome.work_flops;
    m.seconds = outcome.seconds;
    m.speed_flops = achieved_speed(outcome.work_flops, outcome.seconds);
    m.speed_efficiency = speed_efficiency(outcome.work_flops, outcome.seconds,
                                          combination.marked_speed());
    m.overhead_s = outcome.overhead_s;

    const vmpi::TraceRecorder* tracer = machine.tracer();
    HETSCALE_CHECK(tracer != nullptr, "a profiled machine must trace");
    out.utilization = tracer->utilization_table(outcome.seconds);
    out.chrome_trace = tracer->chrome_trace_json();
  }
  const auto runs = profiler.sorted_runs();
  HETSCALE_CHECK(runs.size() == 1,
                 "profile_run expected exactly one machine run");
  out.profile = runs.front();
  return out;
}

}  // namespace hetscale::scal
