#include "hetscale/scal/baselines.hpp"

#include "hetscale/scal/metrics.hpp"
#include "hetscale/support/error.hpp"

namespace hetscale::scal {

double speedup(double t_seq, double t_par) {
  HETSCALE_REQUIRE(t_seq > 0.0 && t_par > 0.0, "times must be positive");
  return t_seq / t_par;
}

double parallel_efficiency(double t_seq, double t_par, int p) {
  HETSCALE_REQUIRE(p >= 1, "processor count must be >= 1");
  return speedup(t_seq, t_par) / static_cast<double>(p);
}

double isoefficiency_scalability(double p_from, double w_from, double p_to,
                                 double w_to) {
  return isospeed_scalability(p_from, w_from, p_to, w_to);
}

double productivity(double value_per_s, double cost_per_s) {
  HETSCALE_REQUIRE(cost_per_s > 0.0, "cost must be positive");
  HETSCALE_REQUIRE(value_per_s >= 0.0, "value must be non-negative");
  return value_per_s / cost_per_s;
}

double jw_scalability(double productivity_base, double productivity_scaled) {
  HETSCALE_REQUIRE(productivity_base > 0.0,
                   "base productivity must be positive");
  return productivity_scaled / productivity_base;
}

double cluster_cost_per_s(const machine::Cluster& cluster,
                          double dollars_per_mflops_hour) {
  HETSCALE_REQUIRE(dollars_per_mflops_hour >= 0.0,
                   "price must be non-negative");
  const double mflops = cluster.aggregate_rate_flops() / 1e6;
  return mflops * dollars_per_mflops_hour / 3600.0;
}

double equivalent_processors(std::span<const double> speeds,
                             double reference_speed) {
  HETSCALE_REQUIRE(reference_speed > 0.0, "reference speed must be positive");
  double total = 0.0;
  for (double s : speeds) {
    HETSCALE_REQUIRE(s > 0.0, "speeds must be positive");
    total += s;
  }
  return total / reference_speed;
}

double pastor_bosque_efficiency(double t_seq_ref, double t_par,
                                std::span<const double> speeds,
                                double reference_speed) {
  return speedup(t_seq_ref, t_par) /
         equivalent_processors(speeds, reference_speed);
}

}  // namespace hetscale::scal
