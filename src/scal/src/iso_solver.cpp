#include "hetscale/scal/iso_solver.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "hetscale/numeric/roots.hpp"
#include "hetscale/support/error.hpp"
#include "hetscale/support/log.hpp"

namespace hetscale::scal {

namespace {

IsoSolveResult direct_search(Combination& combination, double target_es,
                             const IsoSolveOptions& options) {
  IsoSolveResult result;
  result.target_es = target_es;

  auto es_at = [&](std::int64_t n) {
    return combination.measure(n).speed_efficiency;
  };

  // Doubling bracket: find hi with E_s(hi) >= target.
  std::int64_t lo = options.n_min;
  std::int64_t hi = lo;
  while (es_at(hi) < target_es) {
    if (hi >= options.n_max) return result;  // unreachable: not found
    lo = hi;
    hi = std::min(options.n_max, hi * 2);
  }
  const std::int64_t n =
      numeric::first_at_least(es_at, target_es, std::min(lo, hi), hi);
  HETSCALE_CHECK(n >= 0, "bracketed target vanished during bisection");
  result.found = true;
  result.n = n;
  result.achieved_es = es_at(n);
  return result;
}

IsoSolveResult trend_line(Combination& combination, double target_es,
                          const IsoSolveOptions& options) {
  HETSCALE_REQUIRE(options.trend_samples >= options.trend_degree + 1,
                   "need more trend samples than polynomial coefficients");
  HETSCALE_REQUIRE(options.trend_n_lo >= 1 &&
                       options.trend_n_hi > options.trend_n_lo,
                   "invalid trend sampling window");
  IsoSolveResult result;
  result.target_es = target_es;

  // Geometric ladder of sample sizes across the window.
  std::vector<std::int64_t> sizes;
  const double ratio =
      std::pow(static_cast<double>(options.trend_n_hi) /
                   static_cast<double>(options.trend_n_lo),
               1.0 / static_cast<double>(options.trend_samples - 1));
  double x = static_cast<double>(options.trend_n_lo);
  for (std::size_t i = 0; i < options.trend_samples; ++i) {
    const auto n = static_cast<std::int64_t>(std::llround(x));
    if (sizes.empty() || n > sizes.back()) sizes.push_back(n);
    x *= ratio;
  }
  const auto curve = sample_efficiency_curve(combination, sizes);
  const auto trend = fit_trend(curve, options.trend_degree);

  // Read the crossing off the trend line, allowing mild extrapolation.
  const double lo = static_cast<double>(sizes.front());
  const double hi = static_cast<double>(sizes.back());
  double n_cross = -1.0;
  try {
    n_cross = numeric::bracket_and_bisect(
        [&](double n) { return trend(n) - target_es; }, lo, hi, 4.0 * hi);
  } catch (const NumericError&) {
    HETSCALE_WARN("trend line never crosses target E_s "
                  << target_es << " for " << combination.name());
    return result;  // not found
  }

  // The paper's verification step: measure at the read-off size.
  const auto n = static_cast<std::int64_t>(std::llround(n_cross));
  result.found = true;
  result.n = std::max<std::int64_t>(n, 1);
  result.achieved_es = combination.measure(result.n).speed_efficiency;
  return result;
}

}  // namespace

IsoSolveResult required_problem_size(Combination& combination,
                                     double target_es,
                                     const IsoSolveOptions& options) {
  HETSCALE_REQUIRE(target_es > 0.0 && target_es < 1.0,
                   "target speed-efficiency must be in (0, 1)");
  HETSCALE_REQUIRE(options.n_min >= 1 && options.n_max > options.n_min,
                   "invalid search range");
  if (options.method == IsoSolveOptions::Method::kDirectSearch) {
    return direct_search(combination, target_es, options);
  }
  return trend_line(combination, target_es, options);
}

}  // namespace hetscale::scal
