#include "hetscale/scal/iso_solver.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "hetscale/numeric/roots.hpp"
#include "hetscale/run/runner.hpp"
#include "hetscale/support/error.hpp"
#include "hetscale/support/log.hpp"

namespace hetscale::scal {

namespace {

/// Smallest n in [lo, hi] with E_s(n) >= target by *speculative* bisection:
/// each wave measures, as one concurrent batch, every midpoint the
/// sequential bisection could visit in its next d steps (the depth-d
/// decision tree of the bracket, 2^d - 1 probes with 2^d - 1 <= jobs), then
/// replays the d decisions on the cached measurements. The trajectory — and
/// therefore the returned n — is identical to numeric::first_at_least on
/// *any* E_s(n), including one with small non-monotone wiggles; the wave
/// only trades redundant concurrent measurements for d levels of progress
/// per sequential round trip.
///
/// Precondition (established by direct_search's doubling bracket): lo == hi,
/// or E_s(lo) < target <= E_s(hi). Both endpoints were measured while
/// bracketing, so the defensive entry probes of a general-purpose
/// first_at_least would only repeat cache lookups — the invariant is
/// asserted in debug builds instead of re-derived per call.
std::int64_t speculative_first_at_least(Combination& combination,
                                        double target, std::int64_t lo,
                                        std::int64_t hi,
                                        run::Runner& runner) {
  const auto es_at = [&](std::int64_t n) {
    return combination.measure(n).speed_efficiency;
  };
  HETSCALE_DCHECK(es_at(hi) >= target,
                  "speculative bisection needs E_s(hi) >= target");
  HETSCALE_DCHECK(lo == hi || es_at(lo) < target,
                  "speculative bisection needs E_s(lo) < target");
  int depth = 1;
  while (depth < 20 &&
         (std::int64_t{2} << depth) - 1 <= static_cast<std::int64_t>(
                                               runner.jobs())) {
    ++depth;
  }
  while (hi - lo > 1) {
    std::vector<std::int64_t> probes;
    std::vector<std::pair<std::int64_t, std::int64_t>> frontier{{lo, hi}};
    for (int level = 0; level < depth; ++level) {
      std::vector<std::pair<std::int64_t, std::int64_t>> next;
      for (const auto& [a, b] : frontier) {
        if (b - a <= 1) continue;
        const std::int64_t mid = a + (b - a) / 2;
        probes.push_back(mid);
        next.emplace_back(a, mid);
        next.emplace_back(mid, b);
      }
      frontier = std::move(next);
    }
    combination.measure_many(probes, runner);  // one concurrent wave
    // Replay bisection's decisions against the now-cached measurements.
    for (int level = 0; level < depth && hi - lo > 1; ++level) {
      const std::int64_t mid = lo + (hi - lo) / 2;
      if (es_at(mid) >= target) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
  }
  return hi;
}

IsoSolveResult direct_search(Combination& combination, double target_es,
                             const IsoSolveOptions& options) {
  IsoSolveResult result;
  result.target_es = target_es;

  auto es_at = [&](std::int64_t n) {
    return combination.measure(n).speed_efficiency;
  };

  // Doubling bracket: find hi with E_s(hi) >= target. Kept sequential even
  // under a runner — each doubling costs several times the previous one, so
  // speculative measurement past the crossing wastes more work than the
  // overlap recovers (see IsoSolveOptions::runner).
  std::int64_t lo = options.n_min;
  std::int64_t hi = lo;
  while (es_at(hi) < target_es) {
    if (hi >= options.n_max) return result;  // unreachable: not found
    lo = hi;
    hi = std::min(options.n_max, hi * 2);
  }
  run::Runner* runner = options.runner;
  const std::int64_t n =
      (runner != nullptr && runner->jobs() > 1)
          ? speculative_first_at_least(combination, target_es,
                                       std::min(lo, hi), hi, *runner)
          : numeric::first_at_least(es_at, target_es, std::min(lo, hi), hi);
  HETSCALE_CHECK(n >= 0, "bracketed target vanished during bisection");
  result.found = true;
  result.n = n;
  result.achieved_es = es_at(n);
  return result;
}

IsoSolveResult trend_line(Combination& combination, double target_es,
                          const IsoSolveOptions& options) {
  HETSCALE_REQUIRE(options.trend_samples >= options.trend_degree + 1,
                   "need more trend samples than polynomial coefficients");
  HETSCALE_REQUIRE(options.trend_n_lo >= 1 &&
                       options.trend_n_hi > options.trend_n_lo,
                   "invalid trend sampling window");
  IsoSolveResult result;
  result.target_es = target_es;

  // Geometric ladder of sample sizes across the window.
  std::vector<std::int64_t> sizes;
  const double ratio =
      std::pow(static_cast<double>(options.trend_n_hi) /
                   static_cast<double>(options.trend_n_lo),
               1.0 / static_cast<double>(options.trend_samples - 1));
  double x = static_cast<double>(options.trend_n_lo);
  for (std::size_t i = 0; i < options.trend_samples; ++i) {
    const auto n = static_cast<std::int64_t>(std::llround(x));
    if (sizes.empty() || n > sizes.back()) sizes.push_back(n);
    x *= ratio;
  }
  const auto curve =
      options.runner != nullptr
          ? sample_efficiency_curve(combination, sizes, *options.runner)
          : sample_efficiency_curve(combination, sizes);
  const auto trend = fit_trend(curve, options.trend_degree);

  // Read the crossing off the trend line, allowing mild extrapolation.
  const double lo = static_cast<double>(sizes.front());
  const double hi = static_cast<double>(sizes.back());
  double n_cross = -1.0;
  try {
    n_cross = numeric::bracket_and_bisect(
        [&](double n) { return trend(n) - target_es; }, lo, hi, 4.0 * hi);
  } catch (const NumericError&) {
    HETSCALE_WARN("trend line never crosses target E_s "
                  << target_es << " for " << combination.name());
    return result;  // not found
  }

  // The paper's verification step: measure at the read-off size.
  const auto n = static_cast<std::int64_t>(std::llround(n_cross));
  result.found = true;
  result.n = std::max<std::int64_t>(n, 1);
  result.achieved_es = combination.measure(result.n).speed_efficiency;
  return result;
}

}  // namespace

IsoSolveResult required_problem_size(Combination& combination,
                                     double target_es,
                                     const IsoSolveOptions& options) {
  HETSCALE_REQUIRE(target_es > 0.0 && target_es < 1.0,
                   "target speed-efficiency must be in (0, 1)");
  HETSCALE_REQUIRE(options.n_min >= 1 && options.n_max > options.n_min,
                   "invalid search range");
  if (options.method == IsoSolveOptions::Method::kDirectSearch) {
    return direct_search(combination, target_es, options);
  }
  return trend_line(combination, target_es, options);
}

}  // namespace hetscale::scal
