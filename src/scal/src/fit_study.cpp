#include "hetscale/scal/fit_study.hpp"

#include <algorithm>
#include <utility>

#include "hetscale/run/runner.hpp"
#include "hetscale/support/error.hpp"

namespace hetscale::scal {

std::vector<int> FitDataset::processor_counts() const {
  std::vector<int> ps;
  for (const auto& point : points) ps.push_back(point.p);
  std::sort(ps.begin(), ps.end());
  ps.erase(std::unique(ps.begin(), ps.end()), ps.end());
  return ps;
}

std::vector<std::int64_t> FitDataset::sizes() const {
  std::vector<std::int64_t> ns;
  for (const auto& point : points) ns.push_back(point.n);
  std::sort(ns.begin(), ns.end());
  ns.erase(std::unique(ns.begin(), ns.end()), ns.end());
  return ns;
}

double heterogeneity_score(std::span<const double> rank_speeds) {
  if (rank_speeds.empty()) return 0.0;
  double sum = 0.0;
  double max = 0.0;
  for (const double c : rank_speeds) {
    sum += c;
    max = std::max(max, c);
  }
  if (max <= 0.0) return 0.0;
  return 1.0 - sum / (static_cast<double>(rank_speeds.size()) * max);
}

FitDataset gather_fit_points(std::string algo,
                             std::span<ClusterCombination* const> ladder,
                             std::span<const std::int64_t> sizes,
                             run::Runner* runner) {
  HETSCALE_REQUIRE(!ladder.empty(), "fit study needs at least one rung");
  HETSCALE_REQUIRE(!sizes.empty(), "fit study needs at least one size");
  FitDataset data;
  data.algo = std::move(algo);
  data.points.reserve(ladder.size() * sizes.size());
  for (ClusterCombination* combination : ladder) {
    HETSCALE_REQUIRE(combination != nullptr, "null combination in ladder");
    std::vector<Measurement> measured;
    if (runner != nullptr) {
      measured = combination->measure_many(sizes, *runner);
    } else {
      measured.reserve(sizes.size());
      for (const auto n : sizes) measured.push_back(combination->measure(n));
    }
    const auto& speeds = combination->rank_speeds();
    const double het = heterogeneity_score(speeds);
    for (const auto& m : measured) {
      FitPoint point;
      point.system = combination->name();
      point.p = combination->processor_count();
      point.n = m.n;
      point.work_flops = m.work_flops;
      point.seconds = m.seconds;
      point.speed_efficiency = m.speed_efficiency;
      point.marked_speed = combination->marked_speed();
      point.root_speed = speeds.front();
      point.het_score = het;
      data.points.push_back(std::move(point));
    }
  }
  return data;
}

}  // namespace hetscale::scal
