#include "hetscale/scal/series.hpp"

#include "hetscale/scal/metrics.hpp"
#include "hetscale/support/error.hpp"

namespace hetscale::scal {

double SeriesReport::cumulative_psi() const {
  double product = 1.0;
  for (const auto& step : steps) product *= step.psi;
  return product;
}

SeriesReport scalability_series(std::span<Combination* const> combinations,
                                double target_es,
                                const IsoSolveOptions& solve) {
  HETSCALE_REQUIRE(combinations.size() >= 2,
                   "a scalability series needs at least two systems");
  SeriesReport report;
  report.target_es = target_es;

  for (Combination* combination : combinations) {
    HETSCALE_REQUIRE(combination != nullptr, "null combination");
    const auto solved = required_problem_size(*combination, target_es, solve);
    OperatingPoint point;
    point.system = combination->name();
    point.marked_speed = combination->marked_speed();
    point.found = solved.found;
    if (solved.found) {
      point.n = solved.n;
      point.work = combination->work(solved.n);
      point.achieved_es = solved.achieved_es;
    }
    report.points.push_back(std::move(point));
  }

  for (std::size_t i = 0; i + 1 < report.points.size(); ++i) {
    const auto& a = report.points[i];
    const auto& b = report.points[i + 1];
    ScalabilityStep step;
    step.from = a.system;
    step.to = b.system;
    if (a.found && b.found) {
      step.psi = isospeed_efficiency_scalability(a.marked_speed, a.work,
                                                 b.marked_speed, b.work);
    }
    report.steps.push_back(std::move(step));
  }
  return report;
}

}  // namespace hetscale::scal
