#include "hetscale/scal/series.hpp"

#include "hetscale/run/runner.hpp"
#include "hetscale/scal/metrics.hpp"
#include "hetscale/support/error.hpp"

namespace hetscale::scal {

double SeriesReport::cumulative_psi() const {
  double product = 1.0;
  for (const auto& step : steps) product *= step.psi;
  return product;
}

SeriesReport scalability_series(std::span<Combination* const> combinations,
                                double target_es,
                                const IsoSolveOptions& solve,
                                run::Runner* runner) {
  HETSCALE_REQUIRE(combinations.size() >= 2,
                   "a scalability series needs at least two systems");
  SeriesReport report;
  report.target_es = target_es;

  for (Combination* combination : combinations) {
    HETSCALE_REQUIRE(combination != nullptr, "null combination");
  }

  // One iso-solve per system. Each solve only touches its own combination,
  // so the ladder is an independent batch; the report below is assembled
  // in ladder order either way.
  std::vector<IsoSolveResult> solved;
  if (runner != nullptr && runner->jobs() > 1) {
    solved = runner->map(combinations.size(), [&](std::size_t i) {
      return required_problem_size(*combinations[i], target_es, solve);
    });
  } else {
    solved.reserve(combinations.size());
    for (Combination* combination : combinations) {
      solved.push_back(required_problem_size(*combination, target_es, solve));
    }
  }

  for (std::size_t i = 0; i < combinations.size(); ++i) {
    Combination* combination = combinations[i];
    OperatingPoint point;
    point.system = combination->name();
    point.marked_speed = combination->marked_speed();
    point.found = solved[i].found;
    if (solved[i].found) {
      point.n = solved[i].n;
      point.work = combination->work(solved[i].n);
      point.achieved_es = solved[i].achieved_es;
    }
    report.points.push_back(std::move(point));
  }

  for (std::size_t i = 0; i + 1 < report.points.size(); ++i) {
    const auto& a = report.points[i];
    const auto& b = report.points[i + 1];
    ScalabilityStep step;
    step.from = a.system;
    step.to = b.system;
    if (a.found && b.found) {
      step.psi = isospeed_efficiency_scalability(a.marked_speed, a.work,
                                                 b.marked_speed, b.work);
    }
    report.steps.push_back(std::move(step));
  }
  return report;
}

}  // namespace hetscale::scal
