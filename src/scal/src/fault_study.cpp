#include "hetscale/scal/fault_study.hpp"

#include <memory>
#include <set>
#include <utility>

#include "hetscale/fault/analysis.hpp"
#include "hetscale/fault/degraded_network.hpp"
#include "hetscale/net/shared_bus.hpp"
#include "hetscale/net/switched.hpp"
#include "hetscale/run/runner.hpp"
#include "hetscale/scal/metrics.hpp"
#include "hetscale/support/error.hpp"

namespace hetscale::scal {
namespace {

std::unique_ptr<net::Network> make_network(NetworkKind kind,
                                           const net::NetworkParams& params) {
  if (kind == NetworkKind::kSharedBus) {
    return std::make_unique<net::SharedBusNetwork>(params);
  }
  return std::make_unique<net::SwitchedNetwork>(params);
}

std::vector<double> processor_rates(const machine::Cluster& cluster) {
  std::vector<double> rates;
  for (const auto& p : cluster.processors()) rates.push_back(p.rate_flops);
  return rates;
}

}  // namespace

FaultedCombination::FaultedCombination(ClusterCombination& inner,
                                       const fault::FaultPlan& plan)
    : inner_(&inner), plan_(&plan), name_(inner.name() + "+faults") {}

double FaultedCombination::marked_speed() const {
  return inner_->marked_speed();
}

double FaultedCombination::work(std::int64_t n) const {
  return inner_->work(n);
}

FaultyMeasurement FaultedCombination::compute(std::int64_t n) const {
  HETSCALE_REQUIRE(n >= 1, "problem size must be >= 1");
  const auto& config = inner_->config();
  auto network = std::make_unique<fault::DegradedNetwork>(
      make_network(config.network, config.net_params), *plan_);
  vmpi::Machine machine(config.cluster, std::move(network), config.tuning);
  fault::Injector injector(*plan_, processor_rates(config.cluster));
  machine.attach_fault_hooks(&injector);

  const ClusterCombination::RunOutcome outcome = inner_->run_once(machine, n);

  FaultyMeasurement fm;
  fm.measurement.n = n;
  fm.measurement.work_flops = outcome.work_flops;
  fm.measurement.seconds = outcome.seconds;
  fm.measurement.speed_flops =
      achieved_speed(outcome.work_flops, outcome.seconds);
  fm.measurement.speed_efficiency = speed_efficiency(
      outcome.work_flops, outcome.seconds, inner_->marked_speed());
  fm.measurement.overhead_s = outcome.overhead_s;
  fm.effective_marked_speed = fault::mean_effective_marked_speed(
      *plan_, inner_->rank_speeds(), outcome.seconds);
  fm.degraded_es = speed_efficiency(outcome.work_flops, outcome.seconds,
                                    fm.effective_marked_speed);
  fm.fault_totals = injector.totals();
  fm.critical_path_fault_s = injector.critical_path_fault_s();
  return fm;
}

const FaultyMeasurement& FaultedCombination::measure_faulty(std::int64_t n) {
  if (auto it = cache_.find(n); it != cache_.end()) return it->second;
  return cache_.emplace(n, compute(n)).first->second;
}

const Measurement& FaultedCombination::measure(std::int64_t n) {
  return measure_faulty(n).measurement;
}

std::vector<Measurement> FaultedCombination::measure_many(
    std::span<const std::int64_t> sizes, run::Runner& runner) {
  // Same shape as ClusterCombination::measure_many: dedup the uncached
  // sizes, simulate them concurrently, merge in request order.
  std::vector<std::int64_t> missing;
  std::set<std::int64_t> seen;
  for (const auto n : sizes) {
    if (cache_.count(n) == 0 && seen.insert(n).second) missing.push_back(n);
  }

  if (runner.jobs() > 1 && missing.size() > 1) {
    const auto computed = runner.map(
        missing.size(), [&](std::size_t i) { return compute(missing[i]); });
    for (std::size_t i = 0; i < missing.size(); ++i) {
      cache_.emplace(missing[i], computed[i]);
    }
  } else {
    for (const auto n : missing) cache_.emplace(n, compute(n));
  }

  std::vector<Measurement> out;
  out.reserve(sizes.size());
  for (const auto n : sizes) out.push_back(cache_.at(n).measurement);
  return out;
}

FaultDecomposition decompose_faults(ClusterCombination& combination,
                                    std::int64_t n,
                                    const fault::FaultPlan& plan) {
  FaultedCombination faulted(combination, plan);
  FaultDecomposition d;
  d.healthy = combination.measure(n);
  d.faulty = faulted.measure_faulty(n);
  d.fault_overhead_s = d.faulty.measurement.seconds - d.healthy.seconds;
  d.attributed_s = d.faulty.critical_path_fault_s;
  d.residual_s = d.fault_overhead_s - d.attributed_s;
  d.efficiency_retention =
      d.healthy.speed_efficiency > 0.0
          ? d.faulty.measurement.speed_efficiency / d.healthy.speed_efficiency
          : 0.0;
  return d;
}

}  // namespace hetscale::scal
