#include "hetscale/scal/exec_time.hpp"

#include "hetscale/numeric/roots.hpp"
#include "hetscale/support/error.hpp"

namespace hetscale::scal {

double iso_efficiency_time(double work, double marked_speed,
                           double speed_efficiency) {
  HETSCALE_REQUIRE(work > 0.0, "work must be positive");
  HETSCALE_REQUIRE(marked_speed > 0.0, "marked speed must be positive");
  HETSCALE_REQUIRE(speed_efficiency > 0.0 && speed_efficiency <= 1.0,
                   "speed-efficiency must be in (0, 1]");
  return work / (speed_efficiency * marked_speed);
}

double scaled_time_ratio(double psi_a, double psi_b) {
  HETSCALE_REQUIRE(psi_a > 0.0 && psi_b > 0.0,
                   "scalabilities must be positive");
  // T' = W'/(e C') and ψ = C'W/(C W')  =>  T' = W/(e C) · 1/ψ · ... with a
  // common starting point (same W, e, C across combinations on systems of
  // equal C'), T_a'/T_b' = ψ_b / ψ_a.
  return psi_b / psi_a;
}

CrossingPoint find_time_crossing(Combination& a, Combination& b,
                                 std::int64_t n_lo, std::int64_t n_hi) {
  HETSCALE_REQUIRE(n_lo >= 1 && n_hi > n_lo, "invalid size range");
  CrossingPoint crossing;

  auto b_wins = [&](std::int64_t n) {
    return b.measure(n).seconds <= a.measure(n).seconds;
  };

  if (b_wins(n_lo)) {
    crossing.exists = true;
    crossing.n = n_lo;
  } else {
    // Gallop until b wins, then bisect for the first winning size.
    std::int64_t lo = n_lo;
    std::int64_t hi = n_lo;
    bool found = false;
    while (hi < n_hi) {
      hi = std::min(n_hi, hi * 2);
      if (b_wins(hi)) {
        found = true;
        break;
      }
      lo = hi;
    }
    if (!found) return crossing;  // no crossing in range
    while (hi - lo > 1) {
      const std::int64_t mid = lo + (hi - lo) / 2;
      if (b_wins(mid)) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    crossing.exists = true;
    crossing.n = hi;
  }
  crossing.time_a = a.measure(crossing.n).seconds;
  crossing.time_b = b.measure(crossing.n).seconds;
  return crossing;
}

}  // namespace hetscale::scal
