#include "hetscale/scal/metrics.hpp"

#include <cmath>

#include "hetscale/support/error.hpp"

namespace hetscale::scal {

double achieved_speed(double work_flops, double seconds) {
  HETSCALE_REQUIRE(work_flops >= 0.0, "work must be non-negative");
  HETSCALE_REQUIRE(seconds > 0.0, "time must be positive");
  return work_flops / seconds;
}

double speed_efficiency(double work_flops, double seconds,
                        double marked_speed_flops) {
  HETSCALE_REQUIRE(marked_speed_flops > 0.0, "marked speed must be positive");
  return achieved_speed(work_flops, seconds) / marked_speed_flops;
}

double ideal_scaled_work(double c_from, double w_from, double c_to) {
  HETSCALE_REQUIRE(c_from > 0.0 && c_to > 0.0,
                   "marked speeds must be positive");
  HETSCALE_REQUIRE(w_from >= 0.0, "work must be non-negative");
  return w_from * c_to / c_from;
}

double isospeed_efficiency_scalability(double c_from, double w_from,
                                       double c_to, double w_to) {
  HETSCALE_REQUIRE(c_from > 0.0 && c_to > 0.0,
                   "marked speeds must be positive");
  HETSCALE_REQUIRE(w_from > 0.0 && w_to > 0.0, "work must be positive");
  return (c_to * w_from) / (c_from * w_to);
}

double isospeed_scalability(double p_from, double w_from, double p_to,
                            double w_to) {
  // Identical form with processor counts in place of marked speeds.
  return isospeed_efficiency_scalability(p_from, w_from, p_to, w_to);
}

bool isospeed_efficiency_condition_holds(double w_from, double t_from,
                                         double c_from, double w_to,
                                         double t_to, double c_to,
                                         double rel_tol) {
  const double es_from = speed_efficiency(w_from, t_from, c_from);
  const double es_to = speed_efficiency(w_to, t_to, c_to);
  return std::abs(es_from - es_to) <= rel_tol * std::max(es_from, es_to);
}

}  // namespace hetscale::scal
