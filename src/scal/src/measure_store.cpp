#include "hetscale/scal/measure_store.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "hetscale/support/error.hpp"

namespace hetscale::scal {

namespace {

/// Format version: bump to invalidate every previously saved store.
constexpr int kFormatVersion = 1;
constexpr const char* kHeader = "hetscale-measure-store";

/// %.17g — enough digits to round-trip any double exactly.
std::string exact(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void append_exact(std::string& s, double v) {
  s += exact(v);
}

/// Keys embed free-form strings (node names, models); squash the
/// characters the line format reserves.
void append_sanitized(std::string& s, std::string_view text) {
  for (char c : text) {
    s += (c == '\t' || c == '\n' || c == '\r') ? ' ' : c;
  }
}

}  // namespace

MeasurementStore& MeasurementStore::global() {
  static MeasurementStore store;
  return store;
}

bool MeasurementStore::enabled() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return enabled_;
}

void MeasurementStore::set_enabled(bool enabled) {
  std::lock_guard<std::mutex> lock(mutex_);
  enabled_ = enabled;
}

bool MeasurementStore::try_get(const std::string& key, std::int64_t n,
                               Measurement& out) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto by_key = entries_.find(key);
  if (by_key != entries_.end()) {
    const auto by_n = by_key->second.find(n);
    if (by_n != by_key->second.end()) {
      ++hits_;
      out = by_n->second;
      return true;
    }
  }
  ++misses_;
  return false;
}

void MeasurementStore::put(const std::string& key, std::int64_t n,
                           const Measurement& m) {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_[key][n] = m;
}

std::size_t MeasurementStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& [key, by_n] : entries_) total += by_n.size();
  return total;
}

std::uint64_t MeasurementStore::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t MeasurementStore::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

void MeasurementStore::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  hits_ = 0;
  misses_ = 0;
}

void MeasurementStore::save(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mutex_);
  os << kHeader << " v" << kFormatVersion << '\n';
  for (const auto& [key, by_n] : entries_) {
    for (const auto& [n, m] : by_n) {
      os << key << '\t' << n << '\t' << exact(m.work_flops) << '\t'
         << exact(m.seconds) << '\t' << exact(m.speed_flops) << '\t'
         << exact(m.speed_efficiency) << '\t' << exact(m.overhead_s) << '\n';
    }
  }
}

bool MeasurementStore::save_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out.good()) return false;
  save(out);
  return out.good();
}

bool MeasurementStore::load(std::istream& is) {
  std::string header;
  if (!std::getline(is, header)) return false;
  if (header != std::string(kHeader) + " v" + std::to_string(kFormatVersion)) {
    return false;
  }
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    // key \t n \t work \t seconds \t speed \t efficiency \t overhead
    std::size_t fields[6];
    std::size_t at = line.size();
    bool ok = true;
    for (int f = 5; f >= 0; --f) {
      at = line.rfind('\t', at == 0 ? 0 : at - 1);
      if (at == std::string::npos) {
        ok = false;
        break;
      }
      fields[f] = at;
    }
    if (!ok) return false;  // truncated line: reject the file's tail
    const std::string key = line.substr(0, fields[0]);
    const char* cursor = line.c_str() + fields[0] + 1;
    char* end = nullptr;
    Measurement m;
    m.n = static_cast<std::int64_t>(std::strtoll(cursor, &end, 10));
    const auto number = [&](std::size_t field) {
      return std::strtod(line.c_str() + fields[field] + 1, nullptr);
    };
    m.work_flops = number(1);
    m.seconds = number(2);
    m.speed_flops = number(3);
    m.speed_efficiency = number(4);
    m.overhead_s = number(5);
    put(key, m.n, m);
  }
  return true;
}

bool MeasurementStore::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return false;
  return load(in);
}

std::string config_fingerprint(std::string_view algo_key,
                               const machine::Cluster& cluster,
                               NetworkKind network,
                               const net::NetworkParams& params,
                               bool with_data,
                               const vmpi::CollectiveTuning& tuning) {
  std::string key;
  key.reserve(256);
  append_sanitized(key, algo_key);
  key += with_data ? "|data|" : "|timing|";
  key += network == NetworkKind::kSharedBus ? "bus" : "switch";
  key += "|net=";
  append_exact(key, params.remote.latency_s);
  key += ',';
  append_exact(key, params.remote.bandwidth_Bps);
  key += ',';
  append_exact(key, params.local.latency_s);
  key += ',';
  append_exact(key, params.local.bandwidth_Bps);
  key += ',';
  append_exact(key, params.per_message_overhead_s);
  if (params.recv_overhead_s != 0.0) {
    // Appended conditionally so every pre-existing cache key is unchanged.
    key += ",recv=";
    append_exact(key, params.recv_overhead_s);
  }
  for (const auto& node : cluster.nodes()) {
    key += "|node=";
    append_sanitized(key, node.name);
    key += '/';
    append_sanitized(key, node.spec.model);
    key += '/';
    key += std::to_string(node.spec.cpus);
    key += '/';
    key += std::to_string(node.cpus_used);
    key += '/';
    append_exact(key, node.spec.cpu_rate_flops);
    key += '/';
    append_exact(key, node.spec.memory_bytes);
    key += '/';
    append_exact(key, node.spec.memory_bandwidth_Bps);
    key += "/bias:";
    for (double b : node.spec.benchmark_bias) {
      append_exact(key, b);
      key += ';';
    }
  }
  // Legacy-flat adds nothing, so fingerprints minted before collective
  // tuning existed still resolve; any other family is spelled out.
  if (!(tuning == vmpi::CollectiveTuning::legacy_flat())) {
    key += "|coll=";
    key += std::to_string(static_cast<int>(tuning.small_bcast));
    key += ',';
    key += std::to_string(static_cast<int>(tuning.large_bcast));
    key += ',';
    append_exact(key, tuning.large_bcast_threshold_bytes);
    key += ',';
    key += std::to_string(static_cast<int>(tuning.barrier));
    key += ',';
    key += std::to_string(static_cast<int>(tuning.gather));
    key += ',';
    key += std::to_string(static_cast<int>(tuning.scatter));
    key += ',';
    key += std::to_string(static_cast<int>(tuning.reduce));
    key += ',';
    key += std::to_string(static_cast<int>(tuning.allreduce));
  }
  return key;
}

}  // namespace hetscale::scal
