#include "hetscale/scal/capacity.hpp"

#include <algorithm>

#include "hetscale/support/error.hpp"

namespace hetscale::scal {

namespace {
constexpr double kBytesPerDouble = 8.0;

double dense_matrix_bytes(std::int64_t n) {
  return kBytesPerDouble * static_cast<double>(n) * static_cast<double>(n);
}
}  // namespace

FootprintFn ge_footprint() {
  return [](std::int64_t n, int rank, int p) {
    const double share =
        dense_matrix_bytes(n) / static_cast<double>(p) + 2.0 * 8.0 * n;
    if (rank == 0) {
      // Original A + b (kept for the residual), the collected U + y, and
      // the root's own working rows.
      return 2.0 * dense_matrix_bytes(n) + 4.0 * 8.0 * n + share;
    }
    return share;
  };
}

FootprintFn mm_footprint() {
  return [](std::int64_t n, int rank, int p) {
    const double blocks = 2.0 * dense_matrix_bytes(n) / static_cast<double>(p);
    if (rank == 0) return 3.0 * dense_matrix_bytes(n);
    return dense_matrix_bytes(n) + blocks;  // full B + A/C blocks
  };
}

FootprintFn jacobi_footprint() {
  return [](std::int64_t n, int rank, int p) {
    const double band =
        2.0 * kBytesPerDouble * static_cast<double>(n) *
        (static_cast<double>(n) / static_cast<double>(p) + 2.0);
    if (rank == 0) return 2.0 * dense_matrix_bytes(n) + band;
    return band;
  };
}

std::int64_t max_feasible_size(const machine::Cluster& cluster,
                               const FootprintFn& footprint,
                               double usable_fraction, std::int64_t n_hi) {
  HETSCALE_REQUIRE(usable_fraction > 0.0 && usable_fraction <= 1.0,
                   "usable fraction must be in (0, 1]");
  HETSCALE_REQUIRE(footprint != nullptr, "footprint function required");
  const auto processors = cluster.processors();
  const int p = static_cast<int>(processors.size());
  HETSCALE_REQUIRE(p >= 1, "cluster has no participating processors");

  auto fits = [&](std::int64_t n) {
    for (int rank = 0; rank < p; ++rank) {
      const auto& node =
          cluster.nodes()[static_cast<std::size_t>(processors[rank].node)];
      // A node's memory is shared by its participating CPUs.
      const double budget = usable_fraction * node.spec.memory_bytes /
                            static_cast<double>(node.cpus_used);
      if (footprint(n, rank, p) > budget) return false;
    }
    return true;
  };

  if (!fits(1)) return 0;
  // Largest feasible n: galloping upper bound, then binary search.
  std::int64_t lo = 1;
  std::int64_t hi = 2;
  while (hi <= n_hi && fits(hi)) {
    lo = hi;
    hi *= 2;
  }
  hi = std::min(hi, n_hi);
  // Invariant: fits(lo), and (hi > n_hi originally or !fits(hi)).
  while (hi - lo > 1) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    if (fits(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  if (lo < n_hi && fits(n_hi)) return n_hi;
  return lo;
}

BoundedSolveResult memory_bounded_required_size(
    ClusterCombination& combination, double target_es,
    const FootprintFn& footprint, IsoSolveOptions options) {
  BoundedSolveResult result;
  result.n_limit =
      max_feasible_size(combination.cluster(), footprint,
                        /*usable_fraction=*/0.8, options.n_max);
  if (result.n_limit < options.n_min) {
    result.memory_bound = true;
    result.solve.target_es = target_es;
    return result;
  }
  options.n_max = std::max(options.n_min + 1, result.n_limit);
  result.solve = required_problem_size(combination, target_es, options);
  result.memory_bound = !result.solve.found;
  return result;
}

}  // namespace hetscale::scal
