#include "hetscale/kernels/dispatch.hpp"

#include <cstdlib>
#include <string>

#include "hetscale/support/error.hpp"
#include "kernels_internal.hpp"

namespace hetscale::kernels {

namespace {

const KernelOps kScalarOps{Isa::kScalar, detail::axpy_scalar,
                           detail::rank1_update4_scalar,
                           detail::mm_tile4_scalar};

/// Pick the process table: env override first, then the best the CPU runs.
/// An explicit HETSCALE_KERNEL=avx2 on a CPU without AVX2 fails loudly —
/// a test matrix that silently fell back would compare scalar to scalar.
const KernelOps& select_ops() {
  const char* env = std::getenv("HETSCALE_KERNEL");
  if (env != nullptr && *env != '\0') {
    const std::string spec(env);
    if (spec == "scalar") return kScalarOps;
    if (spec == "avx2") {
      const KernelOps* table = avx2_ops();
      HETSCALE_REQUIRE(table != nullptr,
                       "HETSCALE_KERNEL=avx2 but this CPU (or build) has no "
                       "AVX2 support");
      return *table;
    }
    throw PreconditionError("HETSCALE_KERNEL must be 'scalar' or 'avx2', "
                            "got: " +
                            spec);
  }
  const KernelOps* table = avx2_ops();
  return table != nullptr ? *table : kScalarOps;
}

}  // namespace

const char* isa_name(Isa isa) {
  return isa == Isa::kAvx2 ? "avx2" : "scalar";
}

bool cpu_supports_avx2() {
#if defined(__x86_64__) || defined(__i386__)
  return detail::avx2_table() != nullptr &&
         __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

const KernelOps& scalar_ops() { return kScalarOps; }

const KernelOps* avx2_ops() {
  return cpu_supports_avx2() ? detail::avx2_table() : nullptr;
}

const KernelOps& ops() {
  static const KernelOps& chosen = select_ops();
  return chosen;
}

Isa active_isa() { return ops().isa; }

}  // namespace hetscale::kernels
