// Private seams between the dispatch table and its implementation TUs.
// kernels_avx2.cpp is the only file compiled with -mavx2; everything it
// exports crosses this header so no AVX2 code is reachable before the
// runtime CPU check in dispatch.cpp.
#pragma once

#include "hetscale/kernels/dispatch.hpp"

namespace hetscale::kernels::detail {

// Scalar reference kernels (kernels_scalar.cpp). These define the
// per-element operation sequence every other ISA must reproduce exactly.
void axpy_scalar(double a, const double* x, double* y, std::size_t n);
void rank1_update4_scalar(const double* x, double* const* rows,
                          const double* factors, std::size_t n);
void mm_tile4_scalar(const double* const* a_rows, const double* panel,
                     std::size_t kc, std::size_t nc, double* const* c_rows);

// The AVX2 table (kernels_avx2.cpp), or nullptr when that TU was built
// without AVX2 support (non-x86 target or a compiler without -mavx2).
// Presence of the table says nothing about the *running* CPU — callers must
// still consult cpu_supports_avx2().
const KernelOps* avx2_table();

}  // namespace hetscale::kernels::detail
