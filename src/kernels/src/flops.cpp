#include "hetscale/kernels/flops.hpp"

namespace hetscale::kernels {

double ge_normalize_flops(std::int64_t n, std::int64_t i) {
  // (N - i) trailing matrix entries + 1 rhs entry, one division each.
  return static_cast<double>(n - i) + 1.0;
}

double ge_eliminate_row_flops(std::int64_t n, std::int64_t i) {
  // (N - i) matrix entries + 1 rhs entry, one multiply + one subtract each.
  return 2.0 * (static_cast<double>(n - i) + 1.0);
}

double ge_backsub_flops(std::int64_t n) {
  // Row ii needs (n - 1 - ii) multiply-adds plus one divide: sum = n^2 - n
  // multiply-add flops + n divides ≈ n^2.
  const double dn = static_cast<double>(n);
  return dn * dn;
}

double mm_rows_flops(std::int64_t n, std::int64_t rows) {
  const double dn = static_cast<double>(n);
  return 2.0 * static_cast<double>(rows) * dn * dn;
}

double jacobi_sweep_flops(std::int64_t n, std::int64_t rows) {
  // 4 neighbour adds + 1 scale + 1 residual mul-add per interior cell.
  return 6.0 * static_cast<double>(rows) * static_cast<double>(n);
}

}  // namespace hetscale::kernels
