// Scalar reference kernels. The loops below are the normative operation
// sequence: any vector implementation must produce, for every output
// element, the same multiplies and adds in the same order (see
// dispatch.hpp). The four-way unrolls don't change per-element arithmetic —
// each lane touches its own element — they just give the compiler
// independent chains to pipeline.
#include "kernels_internal.hpp"

namespace hetscale::kernels::detail {

void axpy_scalar(double a, const double* x, double* y, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    y[i] += a * x[i];
    y[i + 1] += a * x[i + 1];
    y[i + 2] += a * x[i + 2];
    y[i + 3] += a * x[i + 3];
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

void rank1_update4_scalar(const double* x, double* const* rows,
                          const double* factors, std::size_t n) {
  double* y0 = rows[0];
  double* y1 = rows[1];
  double* y2 = rows[2];
  double* y3 = rows[3];
  const double f0 = factors[0];
  const double f1 = factors[1];
  const double f2 = factors[2];
  const double f3 = factors[3];
  for (std::size_t c = 0; c < n; ++c) {
    const double xc = x[c];
    y0[c] -= f0 * xc;
    y1[c] -= f1 * xc;
    y2[c] -= f2 * xc;
    y3[c] -= f3 * xc;
  }
}

void mm_tile4_scalar(const double* const* a_rows, const double* panel,
                     std::size_t kc, std::size_t nc, double* const* c_rows) {
  const double* a0 = a_rows[0];
  const double* a1 = a_rows[1];
  const double* a2 = a_rows[2];
  const double* a3 = a_rows[3];
  double* c0 = c_rows[0];
  double* c1 = c_rows[1];
  double* c2 = c_rows[2];
  double* c3 = c_rows[3];
  for (std::size_t k = 0; k < kc; ++k) {
    const double* brow = panel + k * nc;
    const double f0 = a0[k];
    const double f1 = a1[k];
    const double f2 = a2[k];
    const double f3 = a3[k];
    for (std::size_t j = 0; j < nc; ++j) {
      const double bj = brow[j];
      c0[j] += f0 * bj;
      c1[j] += f1 * bj;
      c2[j] += f2 * bj;
      c3[j] += f3 * bj;
    }
  }
}

}  // namespace hetscale::kernels::detail
