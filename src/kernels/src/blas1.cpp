#include "hetscale/kernels/blas1.hpp"

#include "hetscale/kernels/dispatch.hpp"
#include "hetscale/support/error.hpp"

namespace hetscale::kernels {

void axpy(double a, std::span<const double> x, std::span<double> y) {
  HETSCALE_REQUIRE(x.size() == y.size(), "axpy length mismatch");
  ops().axpy(a, x.data(), y.data(), x.size());
}

void rank1_update(std::span<const double> x, std::span<double* const> rows,
                  std::span<const double> factors) {
  HETSCALE_REQUIRE(rows.size() == factors.size(),
                   "rank1_update needs one factor per row");
  const KernelOps& k = ops();
  const std::size_t m = x.size();
  std::size_t r = 0;
  for (; r + 4 <= rows.size(); r += 4) {
    k.rank1_update4(x.data(), rows.data() + r, factors.data() + r, m);
  }
  // Leftover rows: y += (-f) * x is the same per-element arithmetic as
  // y -= f * x (sign flip and subtraction are both exact).
  for (; r < rows.size(); ++r) k.axpy(-factors[r], x.data(), rows[r], m);
}

double dot(std::span<const double> x, std::span<const double> y) {
  // Deliberately scalar under every dispatch table: a vectorized dot sums
  // partial lanes, which reassociates the reduction and breaks the
  // bit-identity contract (dispatch.hpp).
  HETSCALE_REQUIRE(x.size() == y.size(), "dot length mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
  return acc;
}

void scale(double a, std::span<double> x) {
  for (double& v : x) v *= a;
}

double eliminate_row(std::span<const double> pivot_row, double pivot_rhs,
                     std::span<double> row, double& rhs, std::size_t lead) {
  HETSCALE_REQUIRE(pivot_row.size() == row.size(), "row length mismatch");
  HETSCALE_REQUIRE(lead < row.size(), "lead column out of range");
  const double factor = row[lead];
  if (factor != 0.0) {
    for (std::size_t c = lead; c < row.size(); ++c) {
      row[c] -= factor * pivot_row[c];
    }
    rhs -= factor * pivot_rhs;
  }
  return factor;
}

}  // namespace hetscale::kernels
