#include "hetscale/kernels/blas1.hpp"

#include "hetscale/support/error.hpp"

namespace hetscale::kernels {

void axpy(double a, std::span<const double> x, std::span<double> y) {
  HETSCALE_REQUIRE(x.size() == y.size(), "axpy length mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += a * x[i];
}

double dot(std::span<const double> x, std::span<const double> y) {
  HETSCALE_REQUIRE(x.size() == y.size(), "dot length mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
  return acc;
}

void scale(double a, std::span<double> x) {
  for (double& v : x) v *= a;
}

double eliminate_row(std::span<const double> pivot_row, double pivot_rhs,
                     std::span<double> row, double& rhs, std::size_t lead) {
  HETSCALE_REQUIRE(pivot_row.size() == row.size(), "row length mismatch");
  HETSCALE_REQUIRE(lead < row.size(), "lead column out of range");
  const double factor = row[lead];
  if (factor != 0.0) {
    for (std::size_t c = lead; c < row.size(); ++c) {
      row[c] -= factor * pivot_row[c];
    }
    rhs -= factor * pivot_rhs;
  }
  return factor;
}

}  // namespace hetscale::kernels
