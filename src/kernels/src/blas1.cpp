#include "hetscale/kernels/blas1.hpp"

#include "hetscale/support/error.hpp"

namespace hetscale::kernels {

void axpy(double a, std::span<const double> x, std::span<double> y) {
  HETSCALE_REQUIRE(x.size() == y.size(), "axpy length mismatch");
  const std::size_t m = x.size();
  std::size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    y[i] += a * x[i];
    y[i + 1] += a * x[i + 1];
    y[i + 2] += a * x[i + 2];
    y[i + 3] += a * x[i + 3];
  }
  for (; i < m; ++i) y[i] += a * x[i];
}

void rank1_update(std::span<const double> x, std::span<double* const> rows,
                  std::span<const double> factors) {
  HETSCALE_REQUIRE(rows.size() == factors.size(),
                   "rank1_update needs one factor per row");
  const std::size_t m = x.size();
  std::size_t r = 0;
  for (; r + 4 <= rows.size(); r += 4) {
    double* y0 = rows[r];
    double* y1 = rows[r + 1];
    double* y2 = rows[r + 2];
    double* y3 = rows[r + 3];
    const double f0 = factors[r];
    const double f1 = factors[r + 1];
    const double f2 = factors[r + 2];
    const double f3 = factors[r + 3];
    for (std::size_t c = 0; c < m; ++c) {
      const double xc = x[c];
      y0[c] -= f0 * xc;
      y1[c] -= f1 * xc;
      y2[c] -= f2 * xc;
      y3[c] -= f3 * xc;
    }
  }
  for (; r < rows.size(); ++r) {
    axpy(-factors[r], x, std::span<double>(rows[r], m));
  }
}

double dot(std::span<const double> x, std::span<const double> y) {
  HETSCALE_REQUIRE(x.size() == y.size(), "dot length mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
  return acc;
}

void scale(double a, std::span<double> x) {
  for (double& v : x) v *= a;
}

double eliminate_row(std::span<const double> pivot_row, double pivot_rhs,
                     std::span<double> row, double& rhs, std::size_t lead) {
  HETSCALE_REQUIRE(pivot_row.size() == row.size(), "row length mismatch");
  HETSCALE_REQUIRE(lead < row.size(), "lead column out of range");
  const double factor = row[lead];
  if (factor != 0.0) {
    for (std::size_t c = lead; c < row.size(); ++c) {
      row[c] -= factor * pivot_row[c];
    }
    rhs -= factor * pivot_rhs;
  }
  return factor;
}

}  // namespace hetscale::kernels
