// AVX2 kernels. This is the only translation unit compiled with -mavx2, so
// nothing outside it can accidentally inline AVX2 code onto a pre-AVX2
// machine; dispatch.cpp only follows the table pointer after a runtime
// cpuid check (or an explicit HETSCALE_KERNEL=avx2).
//
// Bit-identity with the scalar reference is load-bearing (golden artifacts
// are byte-compared), and rests on three facts:
//   * every lane computes one output element from the same inputs the
//     scalar loop would use — vectorizing never reassociates across
//     elements;
//   * multiply and add/subtract stay separate instructions: the TU is built
//     with -ffp-contract=off and without -mfma, so `a*b + c` cannot fuse
//     into one differently-rounded FMA;
//   * the matmul tile keeps its C accumulators in registers across the
//     k-loop, which is associatively identical to the scalar loop's
//     store-per-k — the same adds hit the same element in the same order.
#include "kernels_internal.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

namespace hetscale::kernels::detail {
namespace {

void axpy_avx2(double a, const double* x, double* y, std::size_t n) {
  const __m256d av = _mm256_set1_pd(a);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d p0 = _mm256_mul_pd(av, _mm256_loadu_pd(x + i));
    const __m256d p1 = _mm256_mul_pd(av, _mm256_loadu_pd(x + i + 4));
    _mm256_storeu_pd(y + i, _mm256_add_pd(_mm256_loadu_pd(y + i), p0));
    _mm256_storeu_pd(y + i + 4,
                     _mm256_add_pd(_mm256_loadu_pd(y + i + 4), p1));
  }
  for (; i + 4 <= n; i += 4) {
    const __m256d p = _mm256_mul_pd(av, _mm256_loadu_pd(x + i));
    _mm256_storeu_pd(y + i, _mm256_add_pd(_mm256_loadu_pd(y + i), p));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

void rank1_update4_avx2(const double* x, double* const* rows,
                        const double* factors, std::size_t n) {
  double* y0 = rows[0];
  double* y1 = rows[1];
  double* y2 = rows[2];
  double* y3 = rows[3];
  const __m256d f0 = _mm256_set1_pd(factors[0]);
  const __m256d f1 = _mm256_set1_pd(factors[1]);
  const __m256d f2 = _mm256_set1_pd(factors[2]);
  const __m256d f3 = _mm256_set1_pd(factors[3]);
  std::size_t c = 0;
  for (; c + 4 <= n; c += 4) {
    const __m256d xv = _mm256_loadu_pd(x + c);
    _mm256_storeu_pd(y0 + c, _mm256_sub_pd(_mm256_loadu_pd(y0 + c),
                                           _mm256_mul_pd(f0, xv)));
    _mm256_storeu_pd(y1 + c, _mm256_sub_pd(_mm256_loadu_pd(y1 + c),
                                           _mm256_mul_pd(f1, xv)));
    _mm256_storeu_pd(y2 + c, _mm256_sub_pd(_mm256_loadu_pd(y2 + c),
                                           _mm256_mul_pd(f2, xv)));
    _mm256_storeu_pd(y3 + c, _mm256_sub_pd(_mm256_loadu_pd(y3 + c),
                                           _mm256_mul_pd(f3, xv)));
  }
  for (; c < n; ++c) {
    const double xc = x[c];
    y0[c] -= factors[0] * xc;
    y1[c] -= factors[1] * xc;
    y2[c] -= factors[2] * xc;
    y3[c] -= factors[3] * xc;
  }
}

void mm_tile4_avx2(const double* const* a_rows, const double* panel,
                   std::size_t kc, std::size_t nc, double* const* c_rows) {
  const double* a0 = a_rows[0];
  const double* a1 = a_rows[1];
  const double* a2 = a_rows[2];
  const double* a3 = a_rows[3];
  double* c0 = c_rows[0];
  double* c1 = c_rows[1];
  double* c2 = c_rows[2];
  double* c3 = c_rows[3];
  std::size_t j = 0;
  // 4 rows x 8 columns: eight accumulators live in registers through the
  // whole k-loop; each B panel row is loaded once per four C rows.
  for (; j + 8 <= nc; j += 8) {
    __m256d s00 = _mm256_loadu_pd(c0 + j);
    __m256d s01 = _mm256_loadu_pd(c0 + j + 4);
    __m256d s10 = _mm256_loadu_pd(c1 + j);
    __m256d s11 = _mm256_loadu_pd(c1 + j + 4);
    __m256d s20 = _mm256_loadu_pd(c2 + j);
    __m256d s21 = _mm256_loadu_pd(c2 + j + 4);
    __m256d s30 = _mm256_loadu_pd(c3 + j);
    __m256d s31 = _mm256_loadu_pd(c3 + j + 4);
    const double* prow = panel + j;
    for (std::size_t k = 0; k < kc; ++k, prow += nc) {
      const __m256d b0 = _mm256_loadu_pd(prow);
      const __m256d b1 = _mm256_loadu_pd(prow + 4);
      __m256d av = _mm256_set1_pd(a0[k]);
      s00 = _mm256_add_pd(s00, _mm256_mul_pd(av, b0));
      s01 = _mm256_add_pd(s01, _mm256_mul_pd(av, b1));
      av = _mm256_set1_pd(a1[k]);
      s10 = _mm256_add_pd(s10, _mm256_mul_pd(av, b0));
      s11 = _mm256_add_pd(s11, _mm256_mul_pd(av, b1));
      av = _mm256_set1_pd(a2[k]);
      s20 = _mm256_add_pd(s20, _mm256_mul_pd(av, b0));
      s21 = _mm256_add_pd(s21, _mm256_mul_pd(av, b1));
      av = _mm256_set1_pd(a3[k]);
      s30 = _mm256_add_pd(s30, _mm256_mul_pd(av, b0));
      s31 = _mm256_add_pd(s31, _mm256_mul_pd(av, b1));
    }
    _mm256_storeu_pd(c0 + j, s00);
    _mm256_storeu_pd(c0 + j + 4, s01);
    _mm256_storeu_pd(c1 + j, s10);
    _mm256_storeu_pd(c1 + j + 4, s11);
    _mm256_storeu_pd(c2 + j, s20);
    _mm256_storeu_pd(c2 + j + 4, s21);
    _mm256_storeu_pd(c3 + j, s30);
    _mm256_storeu_pd(c3 + j + 4, s31);
  }
  for (; j + 4 <= nc; j += 4) {
    __m256d s0 = _mm256_loadu_pd(c0 + j);
    __m256d s1 = _mm256_loadu_pd(c1 + j);
    __m256d s2 = _mm256_loadu_pd(c2 + j);
    __m256d s3 = _mm256_loadu_pd(c3 + j);
    const double* prow = panel + j;
    for (std::size_t k = 0; k < kc; ++k, prow += nc) {
      const __m256d bv = _mm256_loadu_pd(prow);
      s0 = _mm256_add_pd(s0, _mm256_mul_pd(_mm256_set1_pd(a0[k]), bv));
      s1 = _mm256_add_pd(s1, _mm256_mul_pd(_mm256_set1_pd(a1[k]), bv));
      s2 = _mm256_add_pd(s2, _mm256_mul_pd(_mm256_set1_pd(a2[k]), bv));
      s3 = _mm256_add_pd(s3, _mm256_mul_pd(_mm256_set1_pd(a3[k]), bv));
    }
    _mm256_storeu_pd(c0 + j, s0);
    _mm256_storeu_pd(c1 + j, s1);
    _mm256_storeu_pd(c2 + j, s2);
    _mm256_storeu_pd(c3 + j, s3);
  }
  for (; j < nc; ++j) {
    double s0 = c0[j];
    double s1 = c1[j];
    double s2 = c2[j];
    double s3 = c3[j];
    const double* p = panel + j;
    for (std::size_t k = 0; k < kc; ++k, p += nc) {
      const double bj = *p;
      s0 += a0[k] * bj;
      s1 += a1[k] * bj;
      s2 += a2[k] * bj;
      s3 += a3[k] * bj;
    }
    c0[j] = s0;
    c1[j] = s1;
    c2[j] = s2;
    c3[j] = s3;
  }
}

}  // namespace

const KernelOps* avx2_table() {
  static const KernelOps table{Isa::kAvx2, axpy_avx2, rank1_update4_avx2,
                               mm_tile4_avx2};
  return &table;
}

}  // namespace hetscale::kernels::detail

#else  // !defined(__AVX2__)

namespace hetscale::kernels::detail {

const KernelOps* avx2_table() { return nullptr; }

}  // namespace hetscale::kernels::detail

#endif
