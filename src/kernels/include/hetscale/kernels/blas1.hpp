// Row-level computational kernels shared by the parallel algorithms.
//
// These do the *real* arithmetic; the corresponding flop counts that get
// charged to virtual time live in flops.hpp — keeping the two adjacent makes
// the accounting auditable.
//
// axpy and rank1_update route through the runtime-dispatched kernel table
// (dispatch.hpp): an AVX2 path when the CPU has one, the scalar reference
// otherwise, overridable via HETSCALE_KERNEL. Every path produces
// bit-identical results — see dispatch.hpp for the contract. dot and scale
// stay scalar: a vectorized dot reassociates its reduction, and scale is
// never hot enough to matter.
#pragma once

#include <cstddef>
#include <span>

namespace hetscale::kernels {

/// y += a * x. Requires equal lengths. Dispatched (scalar or AVX2); every
/// path computes y[i] += a * x[i] element-wise, so results are bit-identical
/// across ISAs.
void axpy(double a, std::span<const double> x, std::span<double> y);

/// Blocked rank-1 update: rows[k] -= factors[k] * x for every k, processing
/// four target rows per pass over x so the shared vector is loaded once per
/// block instead of once per row. Each rows[k] must point at x.size()
/// doubles. Per-element arithmetic is identical to axpy(-factors[k], x, ...)
/// — GE's elimination step routes through here without changing a bit of its
/// output.
void rank1_update(std::span<const double> x, std::span<double* const> rows,
                  std::span<const double> factors);

/// Dot product. Requires equal lengths.
double dot(std::span<const double> x, std::span<const double> y);

/// x *= a.
void scale(double a, std::span<double> x);

/// One Gaussian-elimination row update: given the (already normalized, unit
/// diagonal) pivot row and a target row, subtract factor * pivot from the
/// target starting at column `lead`, where factor = row[lead]; also updates
/// the target's right-hand-side entry given the pivot's.
/// Returns the elimination factor.
double eliminate_row(std::span<const double> pivot_row, double pivot_rhs,
                     std::span<double> row, double& rhs, std::size_t lead);

}  // namespace hetscale::kernels
