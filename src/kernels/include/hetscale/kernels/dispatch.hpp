// Runtime CPU-feature dispatch for the computational kernels.
//
// The simulator's golden artifacts are byte-comparisons of floating-point
// output, so every vector path here carries a hard contract: it must perform
// the *same per-element operation sequence* as the scalar reference —
// element-wise lanes, explicit multiply then add/subtract, no FMA
// contraction, no reassociated reductions. Under that contract an AVX2 lane
// computes bit-for-bit what the scalar loop computes for the same element,
// and artifacts stay identical whichever table is selected. Kernels that
// cannot be vectorized without reassociating (dot's horizontal sum) stay
// scalar on purpose.
//
// The table is resolved once per process: HETSCALE_KERNEL=scalar|avx2
// forces an implementation (avx2 requires hardware support and fails loudly
// without it), otherwise the best ISA the CPU offers wins. Alignment is a
// throughput concern only — every entry point accepts unaligned pointers.
#pragma once

#include <cstddef>

namespace hetscale::kernels {

/// The instruction sets an implementation table may target.
enum class Isa { kScalar, kAvx2 };

/// Readable name: "scalar" or "avx2".
const char* isa_name(Isa isa);

/// True when the running CPU can execute the AVX2 table (and this binary
/// compiled one).
bool cpu_supports_avx2();

/// The ISA selected for this process (see file comment). Resolved on first
/// use, then constant for the process lifetime.
Isa active_isa();

/// Raw entry points of one kernel implementation. Pointers may be
/// unaligned; source and destination ranges must not alias.
struct KernelOps {
  Isa isa;

  /// y[i] += a * x[i] for i in [0, n).
  void (*axpy)(double a, const double* x, double* y, std::size_t n);

  /// rows[r][i] -= factors[r] * x[i] for r in [0, 4), i in [0, n) — the
  /// four-row elimination block of GE.
  void (*rank1_update4)(const double* x, double* const* rows,
                        const double* factors, std::size_t n);

  /// Four-row matmul tile over a packed B panel (row stride nc):
  ///   c_rows[r][j] += a_rows[r][k] * panel[k * nc + j]
  /// accumulated for k ascending in [0, kc) — exactly the per-element order
  /// of the reference i-k-j product, so blocked and naive results match
  /// bit-for-bit.
  void (*mm_tile4)(const double* const* a_rows, const double* panel,
                   std::size_t kc, std::size_t nc, double* const* c_rows);
};

/// The process-wide table for active_isa().
const KernelOps& ops();

/// The scalar reference table (always available).
const KernelOps& scalar_ops();

/// The AVX2 table, or nullptr when unsupported on this CPU or not compiled
/// in. Lets tests compare implementations directly regardless of the
/// process-wide selection.
const KernelOps* avx2_ops();

}  // namespace hetscale::kernels
