// Flop accounting for the kernels and algorithm phases.
//
// Virtual time is charged from these counts; they are also summed by tests
// against the closed-form workload polynomials W(N) in numeric/linsolve.hpp
// to guarantee the simulator charges exactly the paper's workload.
#pragma once

#include <cstdint>

namespace hetscale::kernels {

/// Flops to normalize the GE pivot row i of an N x N system (divide the
/// trailing N - i entries of the row plus the rhs entry by the pivot).
double ge_normalize_flops(std::int64_t n, std::int64_t i);

/// Flops to eliminate ONE row j > i at step i: a multiply-add across the
/// trailing N - i matrix entries plus the rhs entry.
double ge_eliminate_row_flops(std::int64_t n, std::int64_t i);

/// Flops of sequential back substitution on an N x N upper-triangular
/// system (the paper GE's stage 2, executed on process 0).
double ge_backsub_flops(std::int64_t n);

/// Flops for one rank's share of C = A * B when it owns `rows` rows of A:
/// rows * N multiply-adds per output column.
double mm_rows_flops(std::int64_t n, std::int64_t rows);

/// Flops of one Jacobi 5-point sweep over `rows` interior rows of an N-wide
/// grid (4 adds + 1 multiply per cell, plus the residual accumulation).
double jacobi_sweep_flops(std::int64_t n, std::int64_t rows);

}  // namespace hetscale::kernels
