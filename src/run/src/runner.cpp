#include "hetscale/run/runner.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <limits>
#include <memory>

#include "hetscale/obs/profiler.hpp"
#include "hetscale/support/args.hpp"
#include "hetscale/support/error.hpp"

namespace hetscale::run {

namespace {

thread_local bool t_on_worker = false;

// One lane's deque of task indices — a Chase-Lev deque specialized to this
// Runner's lifecycle: the buffer is filled once *before* the batch is
// published (the mutex handshake in run_batch gives every worker a
// happens-before edge to those writes) and nothing pushes mid-batch. With
// the buffer immutable, the classic hazards (growth, a steal reading a slot
// the owner is overwriting) vanish, and what remains is the owner/thief
// race on the *indices*: the owner pops at `bottom` with only a seq_cst
// fence on its fast path, thieves CAS `top` forward. They contend only on
// the deque's last element.
struct alignas(64) Lane {
  std::atomic<std::ptrdiff_t> top{0};
  std::atomic<std::ptrdiff_t> bottom{0};
  const std::size_t* buf = nullptr;  ///< slice of Batch::items; read-only
};

}  // namespace

// One submitted batch. The deques hand out task indices; the finish/attach
// counters and the error slot are guarded by the owning Runner's mutex.
struct Runner::Batch {
  std::uint64_t id = 0;
  std::size_t count = 0;
  const std::function<void(std::size_t)>* task = nullptr;
  std::vector<std::size_t> items;    ///< indices grouped by owning lane
  std::unique_ptr<Lane[]> lanes;     ///< one deque per lane
  std::size_t lane_count = 0;
  std::atomic<std::size_t> steals{0};
  std::atomic<bool> failed{false};
  std::size_t finished = 0;  ///< claimed indices fully processed
  int attached = 0;          ///< workers currently draining this batch
  std::size_t error_index = std::numeric_limits<std::size_t>::max();
  std::exception_ptr error;
};

namespace {

enum class StealResult { kEmpty, kContended, kSuccess };

/// Owner-side LIFO pop. Only the lane's owner calls this. The provisional
/// bottom decrement plus seq_cst fence orders it against a concurrent
/// thief's top read; when one element remains, owner and thief race for it
/// through the CAS on top.
bool pop_bottom(Lane& lane, std::size_t& out) {
  const std::ptrdiff_t b = lane.bottom.load(std::memory_order_relaxed) - 1;
  lane.bottom.store(b, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  std::ptrdiff_t t = lane.top.load(std::memory_order_relaxed);
  if (t > b) {
    lane.bottom.store(b + 1, std::memory_order_relaxed);
    return false;
  }
  out = lane.buf[b];
  if (t == b) {
    const bool won = lane.top.compare_exchange_strong(
        t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
    lane.bottom.store(b + 1, std::memory_order_relaxed);
    return won;
  }
  return true;
}

/// Thief-side FIFO steal. Reading buf[t] before the CAS is safe because the
/// buffer never changes during a batch; the CAS then decides whether this
/// thief actually owns index t. A failed CAS is *not* "empty" — another
/// claimant moved top — so the caller must re-scan.
StealResult steal_top(Lane& lane, std::size_t& out) {
  std::ptrdiff_t t = lane.top.load(std::memory_order_acquire);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  const std::ptrdiff_t b = lane.bottom.load(std::memory_order_acquire);
  if (t >= b) return StealResult::kEmpty;
  out = lane.buf[t];
  if (!lane.top.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
    return StealResult::kContended;
  }
  return StealResult::kSuccess;
}

/// Scan the other lanes for work, restarting while any scan was contended:
/// a lost CAS means indices were still in flight, and reporting "no work"
/// then would retire a lane while tasks remain unclaimed.
bool steal_any(Lane* lanes, std::size_t lane_count, std::size_t self,
               std::atomic<std::size_t>& steals, std::size_t& out) {
  for (;;) {
    bool contended = false;
    for (std::size_t d = 1; d < lane_count; ++d) {
      Lane& victim = lanes[(self + d) % lane_count];
      const StealResult r = steal_top(victim, out);
      if (r == StealResult::kSuccess) {
        steals.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      if (r == StealResult::kContended) contended = true;
    }
    if (!contended) return false;
  }
}

}  // namespace

Runner::Runner(int jobs) : jobs_(jobs > 0 ? jobs : default_jobs()) {
  // The caller participates in draining (lane 0), so jobs_ - 1 pool threads
  // give jobs_ concurrent lanes.
  workers_.reserve(static_cast<std::size_t>(jobs_ - 1));
  for (int i = 0; i + 1 < jobs_; ++i) {
    const std::size_t lane = static_cast<std::size_t>(i) + 1;
    workers_.emplace_back([this, lane] { worker_loop(lane); });
  }
}

Runner::~Runner() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

bool Runner::on_worker_thread() { return t_on_worker; }

void Runner::drain(Batch& batch, std::size_t lane) {
  for (;;) {
    std::size_t i;
    if (!pop_bottom(batch.lanes[lane], i) &&
        !steal_any(batch.lanes.get(), batch.lane_count, lane, batch.steals,
                   i)) {
      break;
    }
    std::exception_ptr error;
    if (!batch.failed.load(std::memory_order_relaxed)) {
      try {
        (*batch.task)(i);
      } catch (...) {
        error = std::current_exception();
        batch.failed.store(true, std::memory_order_relaxed);
      }
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (error && i < batch.error_index) {
      batch.error_index = i;
      batch.error = error;
    }
    if (++batch.finished == batch.count) done_cv_.notify_all();
  }
}

void Runner::worker_loop(std::size_t lane) {
  t_on_worker = true;
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock,
                  [&] { return stop_ || (batch_ && batch_->id != seen); });
    if (stop_) return;
    Batch& batch = *batch_;
    seen = batch.id;
    ++batch.attached;
    lock.unlock();
    drain(batch, lane);
    lock.lock();
    // The caller frees the batch only once finished == count and no worker
    // is still attached; always notify so it can re-check both.
    --batch.attached;
    done_cv_.notify_all();
  }
}

void Runner::run_indexed(std::size_t count,
                         const std::function<void(std::size_t)>& task) {
  HETSCALE_REQUIRE(task != nullptr, "batch task must be callable");
  if (count == 0) return;
  obs::Profiler* profiler = obs::current();
  if (profiler == nullptr) {
    run_batch(count, task);
    return;
  }
  // Profiled batch: measure the batch's wall time and the summed per-task
  // busy time (host-side occupancy — volatile across --jobs, so the
  // profiler quarantines it in WallStats).
  using Clock = std::chrono::steady_clock;
  std::atomic<std::int64_t> busy_ns{0};
  const std::function<void(std::size_t)> timed = [&](std::size_t i) {
    const Clock::time_point begin = Clock::now();
    task(i);
    busy_ns.fetch_add(std::chrono::duration_cast<std::chrono::nanoseconds>(
                          Clock::now() - begin)
                          .count(),
                      std::memory_order_relaxed);
  };
  const Clock::time_point begin = Clock::now();
  run_batch(count, timed);
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - begin).count();
  profiler->record_batch(jobs_, count, wall_s,
                         1e-9 * static_cast<double>(busy_ns.load()),
                         last_batch_steals_);
}

void Runner::run_batch(std::size_t count,
                       const std::function<void(std::size_t)>& task) {
  if (jobs_ == 1 || count == 1 || t_on_worker) {
    // Inline execution steals nothing. Only the submitting thread may
    // write the member: a nested batch runs on a worker lane, where a
    // write would race the owner's read-back.
    if (!t_on_worker) last_batch_steals_ = 0;
    for (std::size_t i = 0; i < count; ++i) task(i);
    return;
  }

  Batch batch;
  batch.count = count;
  batch.task = &task;
  batch.lane_count = static_cast<std::size_t>(jobs_);
  batch.lanes = std::make_unique<Lane[]>(batch.lane_count);
  batch.items.resize(count);
  // Deal indices round-robin: lane l owns l, l + L, l + 2L, ... ascending
  // in its buffer. The owner pops LIFO, so each lane starts on its
  // highest-index task; callers that order batches ascending by cost (see
  // scal's measure_many) thus get LPT-style scheduling for free, and
  // thieves pick up each lane's cheap leftovers FIFO.
  std::size_t pos = 0;
  for (std::size_t l = 0; l < batch.lane_count; ++l) {
    Lane& lane = batch.lanes[l];
    lane.buf = batch.items.data() + pos;
    std::size_t size = 0;
    for (std::size_t i = l; i < count; i += batch.lane_count) {
      batch.items[pos + size] = i;
      ++size;
    }
    lane.bottom.store(static_cast<std::ptrdiff_t>(size),
                      std::memory_order_relaxed);
    pos += size;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    batch.id = ++next_batch_id_;
    batch_ = &batch;
  }
  work_cv_.notify_all();

  // Participate as lane 0. Mark this thread as a worker so a nested batch
  // submitted by a task runs inline instead of deadlocking.
  t_on_worker = true;
  drain(batch, 0);
  t_on_worker = false;

  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] {
    return batch.finished == batch.count && batch.attached == 0;
  });
  batch_ = nullptr;
  lock.unlock();
  last_batch_steals_ = batch.steals.load(std::memory_order_relaxed);
  if (batch.error) std::rethrow_exception(batch.error);
}

}  // namespace hetscale::run
