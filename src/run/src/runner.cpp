#include "hetscale/run/runner.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <limits>

#include "hetscale/obs/profiler.hpp"
#include "hetscale/support/args.hpp"
#include "hetscale/support/error.hpp"

namespace hetscale::run {

namespace {
thread_local bool t_on_worker = false;
}  // namespace

// One submitted batch. Workers claim task indices from `next`; the counters
// and the error slot are guarded by the owning Runner's mutex.
struct Runner::Batch {
  std::uint64_t id = 0;
  std::size_t count = 0;
  const std::function<void(std::size_t)>* task = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::size_t finished = 0;  ///< claimed indices fully processed
  int attached = 0;          ///< workers currently draining this batch
  std::size_t error_index = std::numeric_limits<std::size_t>::max();
  std::exception_ptr error;
};

Runner::Runner(int jobs) : jobs_(jobs > 0 ? jobs : default_jobs()) {
  // The caller participates in draining, so jobs_ - 1 pool threads give
  // jobs_ concurrent lanes.
  workers_.reserve(static_cast<std::size_t>(jobs_ - 1));
  for (int i = 0; i + 1 < jobs_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Runner::~Runner() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

bool Runner::on_worker_thread() { return t_on_worker; }

void Runner::drain(Batch& batch) {
  for (;;) {
    const std::size_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch.count) break;
    std::exception_ptr error;
    if (!batch.failed.load(std::memory_order_relaxed)) {
      try {
        (*batch.task)(i);
      } catch (...) {
        error = std::current_exception();
        batch.failed.store(true, std::memory_order_relaxed);
      }
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (error && i < batch.error_index) {
      batch.error_index = i;
      batch.error = error;
    }
    if (++batch.finished == batch.count) done_cv_.notify_all();
  }
}

void Runner::worker_loop() {
  t_on_worker = true;
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock,
                  [&] { return stop_ || (batch_ && batch_->id != seen); });
    if (stop_) return;
    Batch& batch = *batch_;
    seen = batch.id;
    ++batch.attached;
    lock.unlock();
    drain(batch);
    lock.lock();
    // The caller frees the batch only once finished == count and no worker
    // is still attached; always notify so it can re-check both.
    --batch.attached;
    done_cv_.notify_all();
  }
}

void Runner::run_indexed(std::size_t count,
                         const std::function<void(std::size_t)>& task) {
  HETSCALE_REQUIRE(task != nullptr, "batch task must be callable");
  if (count == 0) return;
  obs::Profiler* profiler = obs::current();
  if (profiler == nullptr) {
    run_batch(count, task);
    return;
  }
  // Profiled batch: measure the batch's wall time and the summed per-task
  // busy time (host-side occupancy — volatile across --jobs, so the
  // profiler quarantines it in WallStats).
  using Clock = std::chrono::steady_clock;
  std::atomic<std::int64_t> busy_ns{0};
  const std::function<void(std::size_t)> timed = [&](std::size_t i) {
    const Clock::time_point begin = Clock::now();
    task(i);
    busy_ns.fetch_add(std::chrono::duration_cast<std::chrono::nanoseconds>(
                          Clock::now() - begin)
                          .count(),
                      std::memory_order_relaxed);
  };
  const Clock::time_point begin = Clock::now();
  run_batch(count, timed);
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - begin).count();
  profiler->record_batch(jobs_, count, wall_s,
                         1e-9 * static_cast<double>(busy_ns.load()));
}

void Runner::run_batch(std::size_t count,
                       const std::function<void(std::size_t)>& task) {
  if (jobs_ == 1 || count == 1 || t_on_worker) {
    for (std::size_t i = 0; i < count; ++i) task(i);
    return;
  }

  Batch batch;
  batch.count = count;
  batch.task = &task;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    batch.id = ++next_batch_id_;
    batch_ = &batch;
  }
  work_cv_.notify_all();

  // Participate as the jobs_-th lane. Mark this thread as a worker so a
  // nested batch submitted by a task runs inline instead of deadlocking.
  t_on_worker = true;
  drain(batch);
  t_on_worker = false;

  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] {
    return batch.finished == batch.count && batch.attached == 0;
  });
  batch_ = nullptr;
  lock.unlock();
  if (batch.error) std::rethrow_exception(batch.error);
}

}  // namespace hetscale::run
