#include "hetscale/run/scenario.hpp"

#include <iostream>
#include <map>
#include <optional>
#include <utility>

#include "hetscale/obs/report.hpp"
#include "hetscale/support/args.hpp"
#include "hetscale/support/error.hpp"

namespace hetscale::run {

namespace {

std::map<std::string, Scenario>& registry() {
  static std::map<std::string, Scenario> scenarios;
  return scenarios;
}

}  // namespace

void register_scenario(Scenario scenario) {
  HETSCALE_REQUIRE(!scenario.name.empty(), "scenario name must be non-empty");
  HETSCALE_REQUIRE(scenario.run != nullptr,
                   "scenario '" + scenario.name + "' has no run function");
  const auto [it, inserted] =
      registry().emplace(scenario.name, std::move(scenario));
  HETSCALE_REQUIRE(inserted,
                   "scenario '" + it->first + "' is already registered");
}

const Scenario* find_scenario(const std::string& name) {
  const auto it = registry().find(name);
  return it != registry().end() ? &it->second : nullptr;
}

std::vector<const Scenario*> all_scenarios() {
  std::vector<const Scenario*> out;
  out.reserve(registry().size());
  for (const auto& [name, scenario] : registry()) out.push_back(&scenario);
  return out;  // std::map iteration is already name-sorted
}

OutputFormat parse_format(const std::string& text) {
  if (text == "text") return OutputFormat::kText;
  if (text == "csv") return OutputFormat::kCsv;
  if (text == "json") return OutputFormat::kJson;
  throw PreconditionError("unknown --format '" + text +
                          "' (expected text, csv, or json)");
}

const std::string& render(const RunResult& result, OutputFormat format,
                          std::string& storage) {
  switch (format) {
    case OutputFormat::kText:
      return result.text;
    case OutputFormat::kCsv:
      storage = result.to_csv();
      return storage;
    case OutputFormat::kJson:
      storage = result.to_json();
      return storage;
  }
  throw PreconditionError("invalid output format");
}

int scenario_main(const std::string& name, int argc,
                  const char* const* argv) {
  try {
    ArgParser args;
    args.add_flag("format", "output format: text, csv, json", "text");
    args.add_bool("profile",
                  "profile the run; prints a time-budget report to stderr");
    args.add_bool("help", "show this help");
    add_jobs_flag(args);
    add_sim_threads_flag(args);
    add_seed_flag(args);
    args.parse(argc > 0 ? argc - 1 : 0, argv + 1);

    const Scenario* scenario = find_scenario(name);
    HETSCALE_REQUIRE(scenario != nullptr,
                     "scenario '" + name + "' is not registered");
    if (args.has("help")) {
      std::cout << scenario->name << " — " << scenario->summary << "\n\n"
                << args.help(scenario->name);
      return 0;
    }

    Runner runner(resolve_jobs(args));
    set_global_sim_threads(resolve_sim_threads(args));
    std::optional<obs::Profiler> profiler;
    std::optional<obs::ProfilerScope> profiler_scope;
    if (args.has("profile")) {
      profiler.emplace();
      profiler_scope.emplace(*profiler);
    }
    const RunContext context{runner, parse_format(args.get("format")),
                             resolve_seed(args),
                             profiler ? &*profiler : nullptr};
    const RunResult result = scenario->run(context);
    profiler_scope.reset();
    std::string storage;
    std::cout << render(result, context.format, storage);
    if (profiler) {
      obs::ReportOptions options;
      options.subject = scenario->name;
      options.include_wall = true;
      std::cerr << profiler->report(options).to_table().str();
    }
    return 0;
  } catch (const hetscale::Error& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
}

}  // namespace hetscale::run
