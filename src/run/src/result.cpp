#include "hetscale/run/result.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "hetscale/support/csv.hpp"
#include "hetscale/support/error.hpp"
#include "hetscale/support/table.hpp"

namespace hetscale::run {

Value::Value(bool value)
    : kind_(Kind::kBool), text_(value ? "true" : "false") {}

Value::Value(int value) : Value(static_cast<std::int64_t>(value)) {}

Value::Value(std::int64_t value)
    : kind_(Kind::kInt), text_(std::to_string(value)) {}

Value::Value(std::string value)
    : kind_(Kind::kString), text_(std::move(value)) {}

Value::Value(const char* value) : kind_(Kind::kString), text_(value) {}

Value Value::fixed(double value, int decimals) {
  Value v;
  if (std::isfinite(value)) {
    v.kind_ = Kind::kDouble;
    v.text_ = Table::fixed(value, decimals);
  }
  return v;  // non-finite stays null
}

Value Value::real(double value, int digits) {
  Value v;
  if (std::isfinite(value)) {
    v.kind_ = Kind::kDouble;
    v.text_ = Table::num(value, digits);
  }
  return v;
}

void write_json_string(std::ostream& os, const std::string& piece) {
  os << '"';
  for (const char ch : piece) {
    switch (ch) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          os << buffer;
        } else {
          os << ch;
        }
    }
  }
  os << '"';
}

void Value::write_json(std::ostream& os) const {
  switch (kind_) {
    case Kind::kNull:
      os << "null";
      break;
    case Kind::kBool:
    case Kind::kInt:
    case Kind::kDouble:
      os << text_;  // already a valid JSON literal
      break;
    case Kind::kString:
      write_json_string(os, text_);
      break;
  }
}

void RunResult::add_row(std::vector<Value> row) {
  HETSCALE_REQUIRE(row.size() == columns.size(),
                   "result row width must match the column count");
  rows.push_back(std::move(row));
}

void RunResult::add_scalar(std::string name, Value value) {
  scalars.emplace_back(std::move(name), std::move(value));
}

std::string RunResult::to_csv() const {
  CsvWriter csv(columns);
  for (const auto& row : rows) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (const auto& value : row) cells.push_back(value.text());
    csv.add_row(std::move(cells));
  }
  return csv.str();
}

std::string RunResult::to_json() const {
  std::ostringstream os;
  os << "{\n  \"schema\": \"hetscale.run.result/v1\",\n  \"scenario\": ";
  write_json_string(os, scenario);
  os << ",\n  \"title\": ";
  write_json_string(os, title);
  os << ",\n  \"columns\": [";
  for (std::size_t c = 0; c < columns.size(); ++c) {
    if (c > 0) os << ", ";
    write_json_string(os, columns[c]);
  }
  os << "],\n  \"rows\": [";
  for (std::size_t r = 0; r < rows.size(); ++r) {
    os << (r == 0 ? "\n" : ",\n") << "    [";
    for (std::size_t c = 0; c < rows[r].size(); ++c) {
      if (c > 0) os << ", ";
      rows[r][c].write_json(os);
    }
    os << ']';
  }
  os << (rows.empty() ? "]" : "\n  ]") << ",\n  \"scalars\": {";
  for (std::size_t s = 0; s < scalars.size(); ++s) {
    os << (s == 0 ? "\n" : ",\n") << "    ";
    write_json_string(os, scalars[s].first);
    os << ": ";
    scalars[s].second.write_json(os);
  }
  os << (scalars.empty() ? "}" : "\n  }") << "\n}\n";
  return os.str();
}

}  // namespace hetscale::run
