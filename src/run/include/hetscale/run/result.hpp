// Structured experiment records.
//
// A scenario produces one RunResult: a typed table (columns x rows) plus
// named scalar findings, with three renderings —
//   * text: the byte-exact legacy harness output (header block, aligned
//     tables, commentary), prepared by the scenario itself;
//   * csv:  the tabular data alone, RFC-4180 escaped, for plotting;
//   * json: the full record under the documented schema
//     "hetscale.run.result/v1" (docs/architecture.md).
//
// All renderings are pure functions of the record, so a batch that merges
// deterministically emits byte-identical documents at any worker count.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace hetscale::run {

/// One typed cell: null, bool, integer, real, or string. Reals carry their
/// rendering (fixed decimals or trimmed) so text, CSV, and JSON agree.
class Value {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString };

  Value() = default;  ///< null
  Value(bool value);
  Value(int value);
  Value(std::int64_t value);
  Value(std::string value);
  Value(const char* value);

  /// A real rendered in fixed notation with exactly `decimals` places —
  /// matches Table::fixed so table cells and JSON numbers agree.
  static Value fixed(double value, int decimals);

  /// A real rendered with trailing zeros trimmed (Table::num).
  static Value real(double value, int digits = 4);

  Kind kind() const { return kind_; }

  /// The CSV/text cell rendering (empty for null).
  const std::string& text() const { return text_; }

  /// Emit as a JSON value (strings escaped; non-finite reals become null).
  void write_json(std::ostream& os) const;

 private:
  Kind kind_ = Kind::kNull;
  std::string text_;
};

/// Append `piece` to `os` as a quoted, escaped JSON string.
void write_json_string(std::ostream& os, const std::string& piece);

struct RunResult {
  std::string scenario;  ///< registry name
  std::string title;     ///< artifact title, e.g. "Table 3  Required rank..."

  std::vector<std::string> columns;
  std::vector<std::vector<Value>> rows;  ///< each row matches columns

  /// Named scalar findings (e.g. cumulative psi), in insertion order.
  std::vector<std::pair<std::string, Value>> scalars;

  /// Byte-exact legacy harness rendering, prepared by the scenario.
  std::string text;

  void add_row(std::vector<Value> row);
  void add_scalar(std::string name, Value value);

  /// Tabular data only: columns as header, one line per row.
  std::string to_csv() const;

  /// The full record under schema "hetscale.run.result/v1".
  std::string to_json() const;
};

}  // namespace hetscale::run
