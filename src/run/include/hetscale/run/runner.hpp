// The experiment engine's worker pool.
//
// Every paper artifact is a sweep of *independent, deterministic* DES
// simulations. A Runner executes such a batch across a pool of worker
// threads: each task stays a single-threaded simulation, parallelism is
// only *across* tasks, and results are merged in request order — so any
// output derived from a batch is bit-identical to the sequential run,
// whatever the worker count or scheduling.
//
// Scheduling is work-stealing: each lane (the caller plus every pool
// thread) owns a fixed-capacity deque of task indices, dealt round-robin at
// submission. A lane pops its own deque LIFO and, only once that runs dry,
// steals FIFO from other lanes with a lock-free CAS. The hot path (own-lane
// pop) touches no shared cache line of any other lane; the cold path keeps
// every lane busy when task costs are skewed — exactly the shape of an
// iso-efficiency ladder, where one probe dominates the level. Stealing
// reorders *execution*, never *results*: slot i still holds task i.
//
// Determinism contract: task i must depend only on its own inputs (no
// shared mutable state between tasks); the Runner guarantees result slot i
// holds task i's value and that the caller observes all writes after the
// batch returns. With jobs == 1 no threads are created and every batch
// runs inline on the caller.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace hetscale::run {

class Runner {
 public:
  /// jobs <= 0 picks the process default (HETSCALE_JOBS or hardware
  /// concurrency). jobs == 1 is the sequential fallback: no worker threads
  /// at all, batches run inline on the caller.
  explicit Runner(int jobs = 0);
  ~Runner();

  Runner(const Runner&) = delete;
  Runner& operator=(const Runner&) = delete;

  int jobs() const { return jobs_; }

  /// Run task(0) .. task(count - 1), blocking until all have finished.
  /// Tasks may execute concurrently and in any order when jobs() > 1; they
  /// must be safe to call from different threads at once. If tasks throw,
  /// the batch drains (remaining unstarted tasks are skipped) and the
  /// failure with the smallest task index is rethrown on the caller —
  /// including failures in stolen tasks.
  ///
  /// A batch submitted from inside a task runs inline on that worker —
  /// nested batches cannot deadlock the pool, at the price of no extra
  /// parallelism.
  void run_indexed(std::size_t count,
                   const std::function<void(std::size_t)>& task);

  /// Run fn(i) for i in [0, count) and return the results in index order.
  /// The result type must be default-constructible.
  template <class Fn>
  auto map(std::size_t count, Fn&& fn)
      -> std::vector<std::decay_t<std::invoke_result_t<Fn&, std::size_t>>> {
    std::vector<std::decay_t<std::invoke_result_t<Fn&, std::size_t>>> out(
        count);
    run_indexed(count, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

  /// True on a thread currently executing a Runner task (any Runner).
  static bool on_worker_thread();

  /// How many tasks of the most recent pooled batch ran on a lane other
  /// than the one they were dealt to. Inline batches (jobs() == 1, single
  /// task, or nested) report 0. Observability for tests and tuning only —
  /// stealing never affects results.
  std::size_t last_batch_steals() const { return last_batch_steals_; }

 private:
  struct Batch;

  void worker_loop(std::size_t lane);
  void drain(Batch& batch, std::size_t lane);
  void run_batch(std::size_t count,
                 const std::function<void(std::size_t)>& task);

  int jobs_ = 1;
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;  ///< wakes workers for a new batch
  std::condition_variable done_cv_;  ///< wakes the caller when drained
  Batch* batch_ = nullptr;           ///< in-flight batch; guarded by mutex_
  std::uint64_t next_batch_id_ = 0;
  std::size_t last_batch_steals_ = 0;
  bool stop_ = false;
};

}  // namespace hetscale::run
