// The scenario registry — named, rerunnable experiments.
//
// A Scenario wraps one paper artifact (a table, a figure, an ablation) as
// a function from a RunContext (worker pool + output format) to a
// RunResult. Scenarios register under a stable name; the bench binaries
// and `hetscale_cli run <name>` both resolve through this registry, so
// every artifact has exactly one implementation and a one-command
// regeneration path with `--jobs N` parallelism.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "hetscale/run/result.hpp"
#include "hetscale/run/runner.hpp"

namespace hetscale::obs {
class Profiler;
}  // namespace hetscale::obs

namespace hetscale::run {

enum class OutputFormat { kText, kCsv, kJson };

struct RunContext {
  Runner& runner;
  OutputFormat format = OutputFormat::kText;
  /// Experiment seed (--seed / HETSCALE_SEED). Fault scenarios expand it
  /// into a FaultPlan; healthy scenarios are free to ignore it.
  std::uint64_t seed = 0;
  /// Profiler collecting this run's instrumentation, or null when
  /// profiling is off. Scenarios normally need not touch it — machines
  /// publish to the ambient obs::current() automatically — but it is here
  /// so a scenario can attach extra context if it wants to.
  obs::Profiler* profiler = nullptr;
};

struct Scenario {
  std::string name;     ///< registry key, e.g. "table3_ge_required_rank"
  std::string summary;  ///< one line for listings
  std::function<RunResult(const RunContext&)> run;
};

/// Register a scenario. Throws PreconditionError on a duplicate name or a
/// missing run function.
void register_scenario(Scenario scenario);

/// The scenario registered under `name`, or nullptr.
const Scenario* find_scenario(const std::string& name);

/// All registered scenarios, sorted by name.
std::vector<const Scenario*> all_scenarios();

/// Parse "text" / "csv" / "json" (throws PreconditionError otherwise).
OutputFormat parse_format(const std::string& text);

/// Render `result` in `format` (the scenario's prepared text, its CSV
/// table, or its JSON record).
const std::string& render(const RunResult& result, OutputFormat format,
                          std::string& storage);

/// Shared main() for scenario-backed binaries and the CLI `run` command:
/// parses --format=text|csv|json, --jobs N / -j N (HETSCALE_JOBS fallback),
/// --seed N (HETSCALE_SEED fallback), --profile (time-budget report on
/// stderr), and --help from argv[1..], runs the named scenario, prints to
/// stdout. Returns a process exit code.
int scenario_main(const std::string& name, int argc, const char* const* argv);

}  // namespace hetscale::run
