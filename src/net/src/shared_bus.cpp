#include "hetscale/net/shared_bus.hpp"

#include <algorithm>

namespace hetscale::net {

TransferResult SharedBusNetwork::remote_transfer(int src_node,
                                                 int /*dst_node*/,
                                                 double bytes,
                                                 SimTime depart) {
  // The frame occupies the medium for its full wire time; delivery completes
  // one latency after the last bit leaves the wire. The sender blocks until
  // its frame has been transmitted (synchronous send over a shared segment).
  const double wire = params_.remote.wire_time(bytes);
  const SimTime start = std::max(depart, medium_.free_at());
  const SimTime wire_done = medium_.reserve(depart, wire);
  record_wire(src_node, bytes, wire, start - depart);
  const SimTime arrival = wire_done + params_.remote.latency_s;
  return TransferResult{arrival, wire_done};
}

double SharedBusNetwork::utilization(SimTime horizon) const {
  if (horizon <= 0.0) return 0.0;
  return medium_.busy_time() / horizon;
}

}  // namespace hetscale::net
