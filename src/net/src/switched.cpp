#include "hetscale/net/switched.hpp"

#include <algorithm>

namespace hetscale::net {

void SwitchedNetwork::presize_nodes(int node_count) {
  if (static_cast<std::size_t>(node_count) > tx_ports_.size()) {
    tx_ports_.resize(static_cast<std::size_t>(node_count));
  }
}

des::Timeline& SwitchedNetwork::tx_port(int node) {
  if (static_cast<std::size_t>(node) >= tx_ports_.size()) {
    tx_ports_.resize(static_cast<std::size_t>(node) + 1);
  }
  return tx_ports_[static_cast<std::size_t>(node)];
}

TransferResult SwitchedNetwork::remote_transfer(int src_node, int /*dst_node*/,
                                                double bytes, SimTime depart) {
  // Each node owns a full-duplex link into the switch: its transmissions
  // serialize with each other but not with any other node's.
  const double wire = params_.remote.wire_time(bytes);
  des::Timeline& port = tx_port(src_node);
  const SimTime start = std::max(depart, port.free_at());
  const SimTime wire_done = port.reserve(depart, wire);
  record_wire(src_node, bytes, wire, start - depart);
  const SimTime arrival = wire_done + params_.remote.latency_s;
  return TransferResult{arrival, wire_done};
}

}  // namespace hetscale::net
