#include "hetscale/net/network.hpp"

#include "hetscale/support/error.hpp"

namespace hetscale::net {

namespace {
/// Index of the stats shard the calling simulation thread records into
/// during a partitioned run; -1 on unbound threads (sequential runs).
thread_local int t_partition = -1;
}  // namespace

TransferResult Network::transfer(int src_node, int dst_node, double bytes,
                                 SimTime depart) {
  HETSCALE_REQUIRE(bytes >= 0.0, "message size must be non-negative");
  HETSCALE_REQUIRE(src_node >= 0 && dst_node >= 0, "node ids must be >= 0");
  HETSCALE_REQUIRE(depart >= 0.0, "departure time must be >= 0");
  record_traffic(bytes);

  const SimTime ready = depart + params_.per_message_overhead_s;
  if (src_node == dst_node) {
    // Intra-node: a memory copy, no shared medium involved.
    const SimTime done =
        ready + params_.local.latency_s + params_.local.wire_time(bytes);
    return TransferResult{done, done};
  }
  return remote_transfer(src_node, dst_node, bytes, ready);
}

void Network::begin_partitioned(int partitions, int node_count) {
  HETSCALE_REQUIRE(partitions >= 1, "need at least one partition");
  HETSCALE_REQUIRE(lookahead_s() > 0.0,
                   "this network model provides no lookahead");
  presize_nodes(node_count);
  shards_.assign(static_cast<std::size_t>(partitions), NetworkStats{});
}

void Network::end_partitioned() {
  for (const NetworkStats& shard : shards_) {
    stats_.messages += shard.messages;
    stats_.bytes += shard.bytes;
    stats_.wire_seconds += shard.wire_seconds;
    stats_.contention_seconds += shard.contention_seconds;
    for (const auto& [node, link] : shard.links) {
      LinkStats& into = stats_.links[node];
      into.bytes += link.bytes;
      into.wire_s += link.wire_s;
      into.stall_s += link.stall_s;
    }
  }
  shards_.clear();
}

void Network::set_thread_partition(int partition) { t_partition = partition; }

NetworkStats& Network::sink() {
  if (!shards_.empty() && t_partition >= 0 &&
      static_cast<std::size_t>(t_partition) < shards_.size()) {
    return shards_[static_cast<std::size_t>(t_partition)];
  }
  return stats_;
}

void Network::record_traffic(double bytes) {
  NetworkStats& stats = sink();
  ++stats.messages;
  stats.bytes += bytes;
}

void Network::record_wire(int src_node, double bytes, double wire_s,
                          double stall_s) {
  NetworkStats& stats = sink();
  stats.wire_seconds += wire_s;
  stats.contention_seconds += stall_s;
  LinkStats& link = stats.links[src_node];
  link.bytes += bytes;
  link.wire_s += wire_s;
  link.stall_s += stall_s;
}

}  // namespace hetscale::net
