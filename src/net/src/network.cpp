#include "hetscale/net/network.hpp"

#include "hetscale/support/error.hpp"

namespace hetscale::net {

TransferResult Network::transfer(int src_node, int dst_node, double bytes,
                                 SimTime depart) {
  HETSCALE_REQUIRE(bytes >= 0.0, "message size must be non-negative");
  HETSCALE_REQUIRE(src_node >= 0 && dst_node >= 0, "node ids must be >= 0");
  HETSCALE_REQUIRE(depart >= 0.0, "departure time must be >= 0");
  record_traffic(bytes);

  const SimTime ready = depart + params_.per_message_overhead_s;
  if (src_node == dst_node) {
    // Intra-node: a memory copy, no shared medium involved.
    const SimTime done =
        ready + params_.local.latency_s + params_.local.wire_time(bytes);
    return TransferResult{done, done};
  }
  return remote_transfer(src_node, dst_node, bytes, ready);
}

void Network::record_traffic(double bytes) {
  ++stats_.messages;
  stats_.bytes += bytes;
}

void Network::record_wire(int src_node, double bytes, double wire_s,
                          double stall_s) {
  stats_.wire_seconds += wire_s;
  stats_.contention_seconds += stall_s;
  LinkStats& link = stats_.links[src_node];
  link.bytes += bytes;
  link.wire_s += wire_s;
  link.stall_s += stall_s;
}

}  // namespace hetscale::net
