// SharedBusNetwork: all inter-node traffic serializes on one medium.
//
// This models the paper's testbed ("The network connecting all these nodes
// is 100M Ethernet"): frames from different senders cannot overlap, so
// flat-tree collectives cost Θ(p) — the shape the paper measured.
#pragma once

#include "hetscale/des/timeline.hpp"
#include "hetscale/net/network.hpp"

namespace hetscale::net {

class SharedBusNetwork final : public Network {
 public:
  explicit SharedBusNetwork(NetworkParams params = {}) : Network(params) {}

  /// Fraction of [0, horizon] the medium was busy (utilization report).
  double utilization(SimTime horizon) const;

 private:
  TransferResult remote_transfer(int src_node, int dst_node, double bytes,
                                 SimTime depart) override;

  des::Timeline medium_;
};

}  // namespace hetscale::net
