// Network models.
//
// A Network answers one question analytically: if `bytes` leave node `src`
// for node `dst` at virtual time `depart`, when does the message arrive, and
// when is the sender's CPU free again? The vmpi runtime builds blocking
// sends, receives, and collectives on top of this; collective costs (linear
// in p over a shared medium, like the paper's measured T_bcast ≈ 0.23·p ms)
// then *emerge* instead of being hard-coded.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "hetscale/des/scheduler.hpp"

namespace hetscale::net {

using des::SimTime;

/// Latency/bandwidth of one class of path.
struct LinkParams {
  double latency_s = 5e-5;        ///< end-to-end latency per message
  double bandwidth_Bps = 12.5e6;  ///< sustained payload bandwidth

  /// Pure transmission time of a payload on this link.
  double wire_time(double bytes) const { return bytes / bandwidth_Bps; }
};

/// Result of a point-to-point transfer.
struct TransferResult {
  SimTime arrival;      ///< when the full message is available at dst
  SimTime sender_free;  ///< when the sending CPU can proceed
};

/// Common knobs shared by all network models.
///
/// Defaults are calibrated to the paper's testbed (100 Mb Ethernet, MPICH
/// on ~500 MHz SPARC): ~12.5 MB/s sustained, ~50 us wire latency, and
/// ~100 us of software cost per message — which reproduces the paper's
/// measured T_send ≈ 0.1 ms + per-byte and T_bcast ≈ 0.2 ms per rank.
struct NetworkParams {
  LinkParams remote{5e-5, 12.5e6};  ///< inter-node path (100 Mb Ethernet)
  LinkParams local{5e-6, 400e6};    ///< intra-node path (shared memory copy)
  double per_message_overhead_s = 1e-4;  ///< software send setup cost

  /// Software cost the *receiving* CPU pays per matched message. Off by
  /// default: the paper's calibration folds both ends into the sender-side
  /// overhead, which is fine while every hot collective is root-sourced.
  /// It matters for incast — p-1 concurrent senders hitting one root cost
  /// the root Θ(p) of receive processing in reality, yet 0 under a pure
  /// sender-side model. Studies of gather/reduce-shaped traffic (the
  /// micro_collectives benchmark) turn this on to make that cost visible.
  double recv_overhead_s = 0.0;
};

/// Cumulative on-wire totals of one physical link (a node's injection port
/// on a switched fabric, or a sender's share of the shared bus).
struct LinkStats {
  double bytes = 0.0;   ///< payload bytes transmitted
  double wire_s = 0.0;  ///< time the link was transmitting
  double stall_s = 0.0; ///< time frames waited for the link (contention)
};

/// Cumulative traffic statistics.
struct NetworkStats {
  std::uint64_t messages = 0;
  double bytes = 0.0;
  double wire_seconds = 0.0;        ///< total transmission time on all links
  double contention_seconds = 0.0;  ///< total time frames queued for a link
  std::map<int, LinkStats> links;   ///< keyed by sending node
};

class Network {
 public:
  explicit Network(NetworkParams params) : params_(params) {}
  virtual ~Network() = default;
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Model a message of `bytes` from node `src` to node `dst`, departing at
  /// `depart`. Transfers between ranks on the same node take the local path.
  /// Virtual so that decorators (fault::DegradedNetwork) can intercept the
  /// whole transfer; concrete wire models override remote_transfer instead.
  virtual TransferResult transfer(int src_node, int dst_node, double bytes,
                                  SimTime depart);

  const NetworkParams& params() const { return params_; }
  const NetworkStats& stats() const { return stats_; }

  /// Conservative-parallel lookahead: a positive lower bound on the virtual
  /// time between a message's departure and its visibility at any *other*
  /// node, or 0 when the model provides no such bound (a shared medium
  /// serializes every sender globally, so the partitioned scheduler falls
  /// back to sequential execution on it). Concrete models with per-node
  /// links override this.
  virtual double lookahead_s() const { return 0.0; }

  /// Prepare this network for concurrent use by `partitions` simulation
  /// threads covering nodes [0, node_count): presize lazily-grown per-node
  /// state and shard the stats counters so the recording hot path never
  /// shares a sink between threads. Requires lookahead_s() > 0.
  void begin_partitioned(int partitions, int node_count);

  /// Fold the per-partition stats shards back into stats(), in partition
  /// order (a fixed fold order keeps the double sums deterministic for a
  /// given partition count). Call after the partition threads have joined.
  void end_partitioned();

  /// Bind the calling thread to stats shard `partition` (-1 unbinds). Only
  /// meaningful between begin_partitioned() and end_partitioned().
  static void set_thread_partition(int partition);

  /// The network whose stats() describe what was physically on the wire.
  /// Decorators that re-route transfers through an inner model (and record
  /// only *nominal* traffic on themselves) forward to it, so profilers can
  /// always reach on-wire truth.
  virtual const Network& wire_model() const { return *this; }

 protected:
  /// Model-specific remote path; local transfers are handled by the base.
  virtual TransferResult remote_transfer(int src_node, int dst_node,
                                         double bytes, SimTime depart) = 0;

  /// Model-specific hook of begin_partitioned(): grow any per-node state up
  /// front so partition threads never race a lazy resize.
  virtual void presize_nodes(int node_count) { (void)node_count; }

  /// Count one message of `bytes` toward stats() (decorators overriding
  /// transfer() call this with the *nominal* size, so traffic reports stay
  /// comparable between healthy and degraded runs).
  void record_traffic(double bytes);

  /// Count one frame's link occupancy: `wire_s` of transmission and
  /// `stall_s` of waiting for the link, charged to `src_node`'s link.
  void record_wire(int src_node, double bytes, double wire_s, double stall_s);

  NetworkParams params_;

 private:
  /// The stats sink for the calling thread: the bound shard during a
  /// partitioned run, the shared totals otherwise.
  NetworkStats& sink();

  NetworkStats stats_;
  std::vector<NetworkStats> shards_;  ///< non-empty only while partitioned
};

}  // namespace hetscale::net
