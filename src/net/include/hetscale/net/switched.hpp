// SwitchedNetwork: full-bisection switch; only each node's injection port
// serializes. Used by the ablation benches to ask "how much of GE's poor
// scalability is the shared medium?".
#pragma once

#include <vector>

#include "hetscale/des/timeline.hpp"
#include "hetscale/net/network.hpp"

namespace hetscale::net {

class SwitchedNetwork final : public Network {
 public:
  explicit SwitchedNetwork(NetworkParams params = {}) : Network(params) {}

  /// Per-node links give a real lookahead: a message departing node A at t
  /// is invisible to every other node before t plus the sender's software
  /// overhead and the link latency (contention and wire time only push the
  /// arrival later). This is what lets the partitioned scheduler advance
  /// each partition a full window past the global next event.
  double lookahead_s() const override {
    return params_.per_message_overhead_s + params_.remote.latency_s;
  }

 private:
  TransferResult remote_transfer(int src_node, int dst_node, double bytes,
                                 SimTime depart) override;

  /// Partitioned runs presize the port table: with one rank per node each
  /// port is touched by exactly one partition thread, but the table itself
  /// must not grow concurrently.
  void presize_nodes(int node_count) override;

  des::Timeline& tx_port(int node);

  std::vector<des::Timeline> tx_ports_;
};

}  // namespace hetscale::net
