// SwitchedNetwork: full-bisection switch; only each node's injection port
// serializes. Used by the ablation benches to ask "how much of GE's poor
// scalability is the shared medium?".
#pragma once

#include <vector>

#include "hetscale/des/timeline.hpp"
#include "hetscale/net/network.hpp"

namespace hetscale::net {

class SwitchedNetwork final : public Network {
 public:
  explicit SwitchedNetwork(NetworkParams params = {}) : Network(params) {}

 private:
  TransferResult remote_transfer(int src_node, int dst_node, double bytes,
                                 SimTime depart) override;

  des::Timeline& tx_port(int node);

  std::vector<des::Timeline> tx_ports_;
};

}  // namespace hetscale::net
