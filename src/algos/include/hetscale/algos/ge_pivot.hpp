// Panel-blocked parallel Gaussian Elimination WITH partial pivoting.
//
// The paper's GE (ge.hpp) avoids pivoting entirely — fine for its random
// diagonally dominant systems, wrong as a general solver and, more to the
// point here, *cheap in communication*: every step is one broadcast. Partial
// pivoting changes the communication pattern qualitatively:
//   * every step begins with a global argmax reduction over column i
//     (a 16-byte gather to the pivot slot's owner + the chosen index back),
//   * the winning row is swapped into slot i — a point-to-point exchange of
//     two full rows between the two owners whenever they differ,
//   * only then can the pivot row be normalized and broadcast.
// To keep the extra latencies off the critical path, elimination is
// panel-blocked (HPL-style): within a panel of `panel` columns only the
// panel part of each row is updated eagerly; the trailing parts of the
// panel's pivot rows are broadcast once per panel, every rank reconstructs
// the normalized trailing rows redundantly, and applies the deferred
// updates to its own rows pivot-by-pivot in ascending order.
//
// Numerics: per matrix element the operation sequence is exactly that of
// the unblocked reference numeric::forward_eliminate(Pivoting::kPartial) —
// same pivot choices (strict >, ties to the lowest row), same factors, same
// update order — so the parallel solution is bit-identical to
// numeric::solve_dense(a, b, Pivoting::kPartial) (tested).
//
// Timing-only runs (`with_data = false`) cannot search real data for
// pivots; they draw pivot choices from a seeded SplitMix64 hash instead.
// Virtual time is still fully deterministic, but unlike ge.hpp the
// schedule is a *model* of pivoted GE rather than byte-for-byte the data
// run's schedule (the swap partners differ).
#pragma once

#include <cstdint>
#include <vector>

#include "hetscale/algos/ge.hpp"
#include "hetscale/numeric/matrix.hpp"
#include "hetscale/vmpi/machine.hpp"

namespace hetscale::algos {

struct GePivotOptions {
  std::int64_t n = 0;       ///< matrix order N (required, >= 1)
  std::int64_t panel = 32;  ///< panel width in columns (>= 1)
  bool with_data = true;    ///< perform real arithmetic alongside timing
  std::uint64_t seed = 42;  ///< same default system as ge.hpp
  GeDistribution distribution = GeDistribution::kHeterogeneousCyclic;
  std::vector<double> speeds;  ///< per-rank marked speeds; empty = measure
  /// Optional explicit system (both must be set together); empty means
  /// "generate the same random diagonally dominant system as ge.hpp". Lets
  /// tests feed matrices that *require* pivoting (zero diagonal entries).
  numeric::Matrix system_a;
  std::vector<double> system_b;
};

struct GePivotResult {
  vmpi::RunResult run;
  std::int64_t n = 0;
  double work_flops = 0.0;  ///< W(N) = numeric::ge_workload(n)
  /// Charged flops exceed work_flops: pivot search, and the per-panel
  /// redundant reconstruction of normalized trailing pivot rows on every
  /// rank, are real charged overhead the paper's GE does not pay.
  double charged_flops = 0.0;
  std::int64_t row_swaps = 0;  ///< steps whose pivot was not already in place
  /// Only populated when with_data:
  std::vector<double> solution;
  double residual = 0.0;  ///< ||b - A x||_inf of the parallel solution
};

/// Run pivoted panel-blocked GE on (and consuming) the given single-shot
/// machine.
GePivotResult run_parallel_ge_pivot(vmpi::Machine& machine,
                                    const GePivotOptions& options);

}  // namespace hetscale::algos
