// Iterated sparse matrix-vector product (CSR GEMV) — the repo's first
// memory-bound, load-imbalanced workload.
//
// The paper's GE and MM are dense and compute-bound; their flop counts per
// row are uniform, so a proportional row split balances them almost
// perfectly. Sparse GEMV is different on both axes:
//   * it is memory-bound — a node sustains only a fraction of its dense
//     marked speed streaming CSR indices (modeled as a fixed efficiency
//     factor on Comm::compute), and
//   * the per-row cost varies with the row's nonzero count, so a split that
//     is proportional in *rows* is not proportional in *work*.
// That makes it a sharper stress of heterogeneity-aware distribution: the
// scenario compares the heterogeneous row split against the homogeneous
// block split via dist::imbalance and measured speed-efficiency.
//
// Algorithm (one rank per processor, root = process 0):
//   1. Root distributes CSR row blocks (het-block or homogeneous split of
//      the n rows) and broadcasts x.
//   2. Per sweep: every rank computes its y block (2 nnz_i flops charged at
//      the stream efficiency); the blocks trade around a ring allgather and
//      every rank assembles the next x locally.
// The matrix is synthetic and fully deterministic from (n, seed); results
// are bit-identical to the sequential CSR reference (tested).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hetscale/vmpi/machine.hpp"

namespace hetscale::algos {

/// Deterministic synthetic CSR matrix: row i holds 4..16 nonzeros (hashed
/// from the seed) at distinct sorted columns, always including the
/// diagonal.
struct CsrMatrix {
  std::int64_t n = 0;
  std::vector<std::int64_t> row_ptr;  ///< size n + 1
  std::vector<std::int64_t> cols;  ///< column per nonzero, sorted per row
  std::vector<double> vals;

  std::int64_t nnz() const { return static_cast<std::int64_t>(cols.size()); }
};

CsrMatrix make_synthetic_csr(std::int64_t n, std::uint64_t seed);

/// y[i - row_begin] = sum_k vals[k] * x[cols[k]] over row i's nonzeros in
/// ascending column order — the per-element contract the parallel run and
/// the sequential reference share. Exposed for tests and bench.
void spmv_rows(const CsrMatrix& a, std::int64_t row_begin,
               std::int64_t row_end, std::span<const double> x,
               std::span<double> y);

/// Which row split step 1 uses.
enum class SpmvDistribution {
  kHeterogeneousBlock,  ///< rows ∝ marked speed
  kHomogeneousBlock,    ///< equal rows per rank (baseline)
};

struct SpmvOptions {
  std::int64_t n = 0;      ///< rows / vector length (required, >= 1)
  std::int64_t sweeps = 4; ///< GEMV iterations (x <- y between sweeps)
  bool with_data = true;   ///< perform real arithmetic alongside timing
  std::uint64_t seed = 45;
  SpmvDistribution distribution = SpmvDistribution::kHeterogeneousBlock;
  std::vector<double> speeds;  ///< per-rank marked speeds; empty = measure
};

/// Fraction of the dense marked rate a rank sustains in CSR streaming
/// (memory-bound; applied as Comm::compute's efficiency).
inline constexpr double kSpmvStreamEfficiency = 0.35;

struct SpmvResult {
  vmpi::RunResult run;
  std::int64_t n = 0;
  std::int64_t nnz = 0;
  double work_flops = 0.0;     ///< sweeps * 2 * nnz
  double charged_flops = 0.0;  ///< flops actually charged (== work, tested)
  /// dist::imbalance of the row split actually used, weighted by per-row
  /// nonzeros (1.0 = perfectly proportional *work* split).
  double work_imbalance = 0.0;
  /// Only populated when with_data: y after the final sweep.
  std::vector<double> y;
};

/// Run iterated SpMV on (and consuming) the given single-shot machine.
SpmvResult run_parallel_spmv(vmpi::Machine& machine,
                             const SpmvOptions& options);

}  // namespace hetscale::algos
