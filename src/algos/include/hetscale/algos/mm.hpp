// Parallel Matrix Multiplication (paper §4.1.2).
//
// The paper's simple row-based heuristic under the HoHe strategy of
// Kalinov–Lastovetsky [6]: homogeneous processes, one per processor, with a
// heterogeneous distribution of the matrix over them.
//   1. Process 0 distributes the rows of A proportionally to marked speeds
//      (row-based heterogeneous block distribution).
//   2. Process 0 distributes B (every rank receives the full matrix).
//   3. Every rank computes its rows of C = A B — no communication at all
//      during computation.
//   4. Process 0 collects the result rows.
// Each rank therefore works on ~N·C_i/C rows and performs 2 N^2 · rows
// flops; the total workload is W(N) = 2 N^3, perfectly parallel (α = 0).
#pragma once

#include <cstdint>
#include <vector>

#include "hetscale/numeric/matrix.hpp"
#include "hetscale/vmpi/machine.hpp"

namespace hetscale::algos {

/// Which row distribution step 1 uses (ablation hook; the paper uses
/// the heterogeneous one).
enum class MmDistribution {
  kHeterogeneousBlock,  ///< rows ∝ marked speed (paper)
  kHomogeneousBlock,    ///< equal rows per rank (baseline)
};

struct MmOptions {
  std::int64_t n = 0;       ///< matrix order N (required, >= 1)
  bool with_data = true;    ///< perform real arithmetic alongside timing
  std::uint64_t seed = 43;
  MmDistribution distribution = MmDistribution::kHeterogeneousBlock;
  std::vector<double> speeds;  ///< per-rank marked speeds; empty = measure
};

struct MmResult {
  vmpi::RunResult run;
  std::int64_t n = 0;
  double work_flops = 0.0;     ///< W(N) = 2 N^3
  double charged_flops = 0.0;  ///< flops actually charged (== work, tested)
  /// Only populated when with_data:
  numeric::Matrix a;  ///< the inputs, for external verification
  numeric::Matrix b;
  numeric::Matrix c;  ///< the parallel product
};

/// Run parallel MM on (and consuming) the given single-shot machine.
MmResult run_parallel_mm(vmpi::Machine& machine, const MmOptions& options);

}  // namespace hetscale::algos
