// SUMMA matrix multiplication over a 2D block-cyclic tile distribution.
//
// The scalable universal MM algorithm (van de Geijn & Watts), recast on the
// heterogeneity-aware 2D layer:
//   * The p ranks form a speed-balanced r x c ProcessGrid; A, B and C share
//     one block-cyclic TileMap of square tiles.
//   * For each tile-panel step k: the owners of column panel k of A
//     broadcast their tiles along their grid *row* sub-group, the owners of
//     row panel k of B broadcast along their grid *column* sub-group
//     (vmpi::Group), and every rank accumulates C[ti,tj] += A[ti,k]·B[k,tj]
//     for its owned C tiles with the packed mm_tile4 kernel.
//   * Process 0 distributes tiles up front and collects C at the end, so
//     the workload and measurement protocol match the paper's row MM.
//
// Per output element the k-sum runs in globally ascending order (panels
// ascending, in-tile k ascending), so the product is bit-identical to both
// numeric::multiply and the row-MM result (tested).
#pragma once

#include <cstdint>
#include <vector>

#include "hetscale/numeric/matrix.hpp"
#include "hetscale/vmpi/machine.hpp"

namespace hetscale::algos {

struct SummaOptions {
  std::int64_t n = 0;     ///< matrix order N (required, >= 1)
  std::int64_t tile = 64; ///< square tile edge (>= 1)
  bool with_data = true;  ///< perform real arithmetic alongside timing
  std::uint64_t seed = 43;  ///< same default as row MM: same A and B
  std::vector<double> speeds;  ///< per-rank marked speeds; empty = measure
};

struct SummaResult {
  vmpi::RunResult run;
  std::int64_t n = 0;
  int grid_rows = 0;  ///< the factorization SUMMA ran on
  int grid_cols = 0;
  double work_flops = 0.0;     ///< W(N) = 2 N^3
  double charged_flops = 0.0;  ///< flops actually charged (== work, tested)
  /// Only populated when with_data:
  numeric::Matrix a;
  numeric::Matrix b;
  numeric::Matrix c;  ///< the parallel product
};

/// Run SUMMA on (and consuming) the given single-shot machine.
SummaResult run_parallel_summa(vmpi::Machine& machine,
                               const SummaOptions& options);

/// One local SUMMA update: C += A · B over dense row-major tiles
/// (A rows x inner, B inner x cols, C rows x cols), accumulated with the
/// dispatched mm_tile4/axpy kernels, k ascending. Exposed for the kernel
/// tests and bench/micro_numeric.
void summa_tile_product(const double* a, std::int64_t rows, std::int64_t inner,
                        const double* b, std::int64_t cols, double* c);

}  // namespace hetscale::algos
