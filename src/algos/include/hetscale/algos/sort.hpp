// Parallel sample sort — a fourth algorithm-machine combination, with a
// genuinely different shape from GE/MM/Jacobi: sub-cubic work
// W(N) = 6·N·log2(N), personalized all-to-all communication, and a
// *data-dependent* load balance.
//
// Pipeline (classic sample sort, heterogeneity-aware):
//   1. Process 0 distributes keys proportionally to marked speeds.
//   2. Local sort (charged 3·n_i·log2 N per rank).
//   3. Regular sampling: each rank contributes p-1 samples; process 0
//      selects p-1 global splitters and broadcasts them.
//   4. Bucket partition + alltoall exchange.
//   5. Local sort of the received bucket (charged 3·m_i·log2 N).
//   6. Gather to process 0 — concatenation is globally sorted.
//
// The splitter policy is the heterogeneity lever: uniform splitters give
// every rank ~N/p keys in phase 5 (wrong on a heterogeneous machine);
// speed-proportional splitters cut the sample at cumulative-marked-speed
// positions so the fast ranks receive proportionally more keys.
//
// Unlike GE/MM, sorting is cheap enough to always run on real data — the
// bucket sizes (and hence the timing) are data-dependent by nature.
#pragma once

#include <cstdint>
#include <vector>

#include "hetscale/vmpi/machine.hpp"

namespace hetscale::algos {

enum class SortSplitters {
  kUniform,            ///< equal buckets (homogeneous assumption)
  kSpeedProportional,  ///< buckets ∝ marked speed (heterogeneity-aware)
};

struct SortOptions {
  std::int64_t n = 0;  ///< number of keys (required, >= 2)
  std::uint64_t seed = 45;
  SortSplitters splitters = SortSplitters::kSpeedProportional;
  std::vector<double> speeds;  ///< per-rank marked speeds; empty = measure
};

struct SortResult {
  vmpi::RunResult run;
  std::int64_t n = 0;
  double work_flops = 0.0;     ///< W(N) = 6 N log2 N
  double charged_flops = 0.0;  ///< == work (tested)
  std::vector<double> sorted;  ///< the globally sorted keys (at process 0)
  /// Keys each rank ended up sorting in phase 5 (load-balance diagnostics).
  std::vector<std::int64_t> bucket_counts;
};

/// W(N) = 6 N log2 N — the comparison-sort workload polynomial.
double sort_workload(std::int64_t n);

/// Run parallel sample sort on (and consuming) the given machine.
SortResult run_parallel_sort(vmpi::Machine& machine,
                             const SortOptions& options);

}  // namespace hetscale::algos
