// Parallel Gaussian Elimination (paper §4.1.1).
//
// The algorithm, exactly as the paper describes it:
//   1. Process 0 distributes matrix A and vector b proportionally to the
//      ranks' marked speeds using a row-based heterogeneous cyclic
//      distribution (Kalinov–Lastovetsky [6]).
//   2. For each step i: the owner of the pivot row normalizes and broadcasts
//      it (two broadcasts — the row and its rhs entry); every rank
//      eliminates its own rows j > i; all ranks synchronize on a barrier.
//   3. Process 0 collects the reduced rows and performs back substitution
//      (the algorithm's sequential portion, α = O(1/N)).
//
// Real data and virtual time are decoupled: with `with_data = false` the
// run charges identical flops and moves identical bytes — virtual timing is
// bit-identical (tested) — but skips the host-side arithmetic, which makes
// large scalability sweeps cheap.
#pragma once

#include <cstdint>
#include <vector>

#include "hetscale/vmpi/machine.hpp"

namespace hetscale::algos {

/// Which row distribution stage 0 uses (ablation hook; the paper uses the
/// heterogeneous cyclic one).
enum class GeDistribution {
  kHeterogeneousCyclic,  ///< rows dealt ∝ marked speed (paper, ref [6])
  kHomogeneousCyclic,    ///< plain round-robin (baseline)
};

struct GeOptions {
  std::int64_t n = 0;        ///< matrix order N (required, >= 1)
  bool with_data = true;     ///< perform real arithmetic alongside timing
  std::uint64_t seed = 42;   ///< seed for the random diagonally dominant A
  GeDistribution distribution = GeDistribution::kHeterogeneousCyclic;
  /// The paper's algorithm synchronizes all processes after each
  /// elimination step ("(2.2) Synchronize all processes due to data
  /// dependence"). Strictly, the broadcast already orders the computation —
  /// this flag removes the barrier to measure what the synchronization
  /// costs (ablation; results are bit-identical either way, tested).
  bool barrier_each_step = true;
  /// Pipelined (lookahead-1) variant: the owner of row i+1 eliminates that
  /// row first and *asynchronously* sends the next pivot (Comm::isend)
  /// while everyone — itself included — finishes step i's eliminations, so
  /// pivot distribution overlaps computation. No per-step barrier. The
  /// numerics are bit-identical to the paper's algorithm (tested); only
  /// the schedule changes. This is the classic optimization the paper-era
  /// implementation left on the table — `bench/ablation_pipeline`
  /// quantifies what it buys in ψ.
  bool pipelined = false;
  /// Marked speeds per rank driving the data distribution; empty means
  /// "measure them from the machine's cluster" (marked::rank_marked_speeds).
  std::vector<double> speeds;
};

struct GeResult {
  vmpi::RunResult run;
  std::int64_t n = 0;
  double work_flops = 0.0;     ///< W(N) = numeric::ge_workload(n)
  double charged_flops = 0.0;  ///< flops actually charged (== work, tested)
  /// Only populated when with_data:
  std::vector<double> solution;
  double residual = 0.0;  ///< ||b - A x||_inf of the parallel solution
};

/// Run parallel GE on (and consuming) the given single-shot machine.
GeResult run_parallel_ge(vmpi::Machine& machine, const GeOptions& options);

}  // namespace hetscale::algos
