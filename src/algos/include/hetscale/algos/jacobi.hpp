// Parallel Jacobi 2-D stencil — a third algorithm-machine combination.
//
// Not in the paper's evaluation; included as the generality exercise its
// conclusion calls for ("appropriate for a general scalable computing
// environment"). Communication is nearest-neighbour ghost-row exchange, a
// very different pattern from GE's broadcasts and MM's root-centric
// distribution, so it stresses the metric (and the simulator) differently.
//
// The grid is N x N, partitioned into contiguous row bands proportional to
// marked speeds; each sweep updates interior cells from the 4-neighbour
// average and the fixed boundary, costing kernels::jacobi_sweep_flops.
#pragma once

#include <cstdint>
#include <vector>

#include "hetscale/vmpi/machine.hpp"

namespace hetscale::algos {

struct JacobiOptions {
  std::int64_t n = 0;          ///< grid side N (required, >= 3)
  std::int64_t sweeps = 10;    ///< fixed sweep count (no convergence test)
  bool with_data = true;
  std::uint64_t seed = 44;
  std::vector<double> speeds;  ///< per-rank marked speeds; empty = measure
};

struct JacobiResult {
  vmpi::RunResult run;
  std::int64_t n = 0;
  std::int64_t sweeps = 0;
  double work_flops = 0.0;     ///< jacobi_workload(n, sweeps)
  double charged_flops = 0.0;
  /// Only populated when with_data: the final grid, row-major N x N.
  std::vector<double> grid;
};

/// W(N, sweeps) — total flops of the sweep phase.
double jacobi_workload(std::int64_t n, std::int64_t sweeps);

/// Run the parallel Jacobi solver on (and consuming) the given machine.
JacobiResult run_parallel_jacobi(vmpi::Machine& machine,
                                 const JacobiOptions& options);

/// Sequential reference for correctness tests: the same sweeps on one node.
std::vector<double> jacobi_reference(std::int64_t n, std::int64_t sweeps,
                                     std::uint64_t seed);

}  // namespace hetscale::algos
