// Internal: per-rank flop-charge ledger.
//
// Every algorithm keeps a running total of the flops it charged to
// comm.compute() so tests can pin charged == modeled work. Rank coroutines
// may execute on different partition threads (--sim-threads > 1), so a
// single shared accumulator would race — and even an atomic one would sum
// in thread-timing order. Each rank therefore owns a slot, and the total
// folds the slots in rank order: one deterministic value at any thread
// count. The fold is also bit-equal to the old temporal-order sum for
// every algorithm whose charges are integer-valued flop counts (all of
// them well below 2^53), since integer doubles add exactly in any order.
#pragma once

#include <cstddef>
#include <vector>

namespace hetscale::algos {

class ChargeLedger {
 public:
  /// Size the ledger for `ranks` slots, all zero. Call before the run.
  void reset(int ranks) {
    slots_.assign(static_cast<std::size_t>(ranks), 0.0);
  }

  /// Charge `flops` to `rank`'s slot. Safe from the rank's own thread only.
  void add(int rank, double flops) {
    slots_[static_cast<std::size_t>(rank)] += flops;
  }

  /// Fold the slots in rank order. Call after the run.
  double total() const {
    double sum = 0.0;
    for (double slot : slots_) sum += slot;
    return sum;
  }

 private:
  std::vector<double> slots_;
};

}  // namespace hetscale::algos
