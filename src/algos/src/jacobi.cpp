#include "charge_ledger.hpp"
#include "hetscale/algos/jacobi.hpp"

#include <memory>
#include <utility>

#include "hetscale/dist/distribution.hpp"
#include "hetscale/kernels/flops.hpp"
#include "hetscale/marked/suite.hpp"
#include "hetscale/support/error.hpp"
#include "hetscale/support/rng.hpp"
#include "hetscale/vmpi/payload.hpp"

namespace hetscale::algos {

namespace {

using des::Task;
using vmpi::Comm;
using vmpi::Payload;

constexpr int kRoot = 0;
constexpr int kTagBand = 300;
constexpr int kTagGhostDown = 301;  ///< carries a row travelling to rank+1
constexpr int kTagGhostUp = 302;    ///< carries a row travelling to rank-1
constexpr int kTagCollect = 303;
constexpr double kMetadataBytes = 16.0;

struct JacobiShared {
  std::int64_t n = 0;
  std::int64_t sweeps = 0;
  bool with_data = true;
  std::uint64_t seed = 44;
  std::vector<std::int64_t> counts;   ///< interior rows per rank
  std::vector<std::int64_t> offsets;  ///< first interior row per rank (1-based grid row)
  std::vector<double> grid0;          ///< initial grid at root
  std::vector<double> grid;           ///< final grid at root
  ChargeLedger charged;
};

std::vector<double> make_grid(std::int64_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> grid(static_cast<std::size_t>(n * n));
  for (auto& v : grid) v = rng.uniform(0.0, 1.0);
  return grid;
}

void sweep_band(std::vector<double>& local, std::vector<double>& scratch,
                std::int64_t n, std::int64_t count) {
  // local is (count + 2) x n: ghost row, band rows, ghost row.
  const auto w = static_cast<std::size_t>(n);
  for (std::int64_t r = 1; r <= count; ++r) {
    const double* up = local.data() + static_cast<std::size_t>(r - 1) * w;
    const double* mid = local.data() + static_cast<std::size_t>(r) * w;
    const double* down = local.data() + static_cast<std::size_t>(r + 1) * w;
    double* out = scratch.data() + static_cast<std::size_t>(r) * w;
    out[0] = mid[0];
    out[w - 1] = mid[w - 1];
    for (std::size_t c = 1; c + 1 < w; ++c) {
      out[c] = 0.25 * (up[c] + down[c] + mid[c - 1] + mid[c + 1]);
    }
  }
  // Band rows move; ghosts are refreshed from neighbours next sweep.
  for (std::int64_t r = 1; r <= count; ++r) {
    const auto base = static_cast<std::size_t>(r) * w;
    std::copy(scratch.begin() + static_cast<std::ptrdiff_t>(base),
              scratch.begin() + static_cast<std::ptrdiff_t>(base + w),
              local.begin() + static_cast<std::ptrdiff_t>(base));
  }
}

Task<void> jacobi_rank(Comm& comm, JacobiShared& sh) {
  const int rank = comm.rank();
  const int p = comm.size();
  const std::int64_t n = sh.n;
  const auto w = static_cast<std::size_t>(n);
  const auto count = sh.counts[static_cast<std::size_t>(rank)];
  const auto first_row = sh.offsets[static_cast<std::size_t>(rank)];
  const double row_bytes = static_cast<double>(n) * 8.0;

  co_await comm.bcast(kRoot, kMetadataBytes, {});

  // ---- Distribution: each rank gets its band plus initial ghost rows ----
  std::vector<double> local;  // (count + 2) x n
  if (rank == kRoot) {
    for (int dst = 0; dst < p; ++dst) {
      if (dst == kRoot) continue;
      Payload payload;
      const auto dst_count = sh.counts[static_cast<std::size_t>(dst)];
      if (sh.with_data) {
        const auto dst_first = sh.offsets[static_cast<std::size_t>(dst)];
        payload = Payload::copy_of(
            std::span<const double>(sh.grid0)
                .subspan(static_cast<std::size_t>((dst_first - 1) * n),
                         static_cast<std::size_t>((dst_count + 2) * n)));
      }
      co_await comm.send(dst, kTagBand,
                         row_bytes * static_cast<double>(dst_count + 2),
                         std::move(payload));
    }
    if (sh.with_data) {
      local.assign(
          sh.grid0.begin() + static_cast<std::ptrdiff_t>((first_row - 1) * n),
          sh.grid0.begin() +
              static_cast<std::ptrdiff_t>((first_row + count + 1) * n));
    }
  } else {
    auto message = co_await comm.recv(kRoot, kTagBand);
    if (sh.with_data) {
      const auto band = message.payload.doubles();
      local.assign(band.begin(), band.end());
    }
  }
  std::vector<double> scratch(sh.with_data ? local.size() : 0);

  // ---- Sweeps with nearest-neighbour ghost exchange ----
  for (std::int64_t s = 0; s < sh.sweeps; ++s) {
    // Post sends first (sends are buffered: no rendezvous deadlock).
    if (rank > 0) {
      // Ghost rows ride pooled buffers: every sweep reuses the same
      // size-class blocks, so steady-state exchange allocates nothing.
      Payload top;
      if (sh.with_data) {
        top = Payload::copy_of(std::span<const double>(local).subspan(w, w));
      }
      co_await comm.send(rank - 1, kTagGhostUp, row_bytes, std::move(top));
    }
    if (rank + 1 < p) {
      Payload bottom;
      if (sh.with_data) {
        bottom = Payload::copy_of(std::span<const double>(local).subspan(
            static_cast<std::size_t>(count) * w, w));
      }
      co_await comm.send(rank + 1, kTagGhostDown, row_bytes,
                         std::move(bottom));
    }
    if (rank > 0) {
      auto message = co_await comm.recv(rank - 1, kTagGhostDown);
      if (sh.with_data) {
        const auto ghost = message.payload.doubles();
        std::copy(ghost.begin(), ghost.end(), local.begin());
      }
    }
    if (rank + 1 < p) {
      auto message = co_await comm.recv(rank + 1, kTagGhostUp);
      if (sh.with_data) {
        const auto ghost = message.payload.doubles();
        std::copy(ghost.begin(), ghost.end(),
                  local.begin() + static_cast<std::ptrdiff_t>(
                                      static_cast<std::size_t>(count + 1) * w));
      }
    }

    sh.charged.add(rank, kernels::jacobi_sweep_flops(n, count));
    co_await comm.compute(kernels::jacobi_sweep_flops(n, count));
    if (sh.with_data) sweep_band(local, scratch, n, count);
  }

  // ---- Collection ----
  if (rank != kRoot) {
    Payload payload;
    if (sh.with_data) {
      payload = Payload::copy_of(std::span<const double>(local).subspan(
          w, static_cast<std::size_t>(count) * w));
    }
    co_await comm.send(kRoot, kTagCollect,
                       row_bytes * static_cast<double>(count),
                       std::move(payload));
    co_return;
  }

  if (sh.with_data) {
    sh.grid = sh.grid0;  // boundaries stay fixed
    std::copy(local.begin() + static_cast<std::ptrdiff_t>(w),
              local.begin() + static_cast<std::ptrdiff_t>(
                                  static_cast<std::size_t>(count + 1) * w),
              sh.grid.begin() + static_cast<std::ptrdiff_t>(first_row * n));
  }
  for (int src = 0; src < p; ++src) {
    if (src == kRoot) continue;
    auto message = co_await comm.recv(src, kTagCollect);
    if (sh.with_data) {
      const auto band = message.payload.doubles();
      const auto src_first = sh.offsets[static_cast<std::size_t>(src)];
      std::copy(band.begin(), band.end(),
                sh.grid.begin() +
                    static_cast<std::ptrdiff_t>(src_first * n));
    }
  }
}

}  // namespace

double jacobi_workload(std::int64_t n, std::int64_t sweeps) {
  return static_cast<double>(sweeps) *
         kernels::jacobi_sweep_flops(n, n - 2);
}

JacobiResult run_parallel_jacobi(vmpi::Machine& machine,
                                 const JacobiOptions& options) {
  HETSCALE_REQUIRE(options.n >= 3, "Jacobi needs n >= 3");
  HETSCALE_REQUIRE(options.sweeps >= 1, "Jacobi needs sweeps >= 1");
  const int p = machine.world_size();
  HETSCALE_REQUIRE(options.n - 2 >= p,
                   "Jacobi needs at least one interior row per rank");

  auto shared = std::make_shared<JacobiShared>();
  shared->charged.reset(p);
  shared->n = options.n;
  shared->sweeps = options.sweeps;
  shared->with_data = options.with_data;
  shared->seed = options.seed;

  std::vector<double> speeds = options.speeds;
  if (speeds.empty()) speeds = marked::rank_marked_speeds(machine.cluster());
  HETSCALE_REQUIRE(static_cast<int>(speeds.size()) == p,
                   "need one marked speed per rank");

  shared->counts = dist::het_block_counts(speeds, options.n - 2);
  shared->offsets.resize(static_cast<std::size_t>(p));
  std::int64_t row = 1;  // interior rows start at grid row 1
  for (int r = 0; r < p; ++r) {
    shared->offsets[static_cast<std::size_t>(r)] = row;
    row += shared->counts[static_cast<std::size_t>(r)];
  }

  if (options.with_data) shared->grid0 = make_grid(options.n, options.seed);

  auto run = machine.run([shared](Comm& comm) -> Task<void> {
    return jacobi_rank(comm, *shared);
  });

  JacobiResult result;
  result.run = std::move(run);
  result.n = options.n;
  result.sweeps = options.sweeps;
  result.work_flops = jacobi_workload(options.n, options.sweeps);
  result.charged_flops = shared->charged.total();
  result.grid = std::move(shared->grid);
  return result;
}

std::vector<double> jacobi_reference(std::int64_t n, std::int64_t sweeps,
                                     std::uint64_t seed) {
  HETSCALE_REQUIRE(n >= 3 && sweeps >= 1, "need n >= 3 and sweeps >= 1");
  std::vector<double> grid = make_grid(n, seed);
  std::vector<double> next = grid;
  const auto w = static_cast<std::size_t>(n);
  for (std::int64_t s = 0; s < sweeps; ++s) {
    for (std::size_t r = 1; r + 1 < w; ++r) {
      for (std::size_t c = 1; c + 1 < w; ++c) {
        next[r * w + c] = 0.25 * (grid[(r - 1) * w + c] + grid[(r + 1) * w + c] +
                                  grid[r * w + c - 1] + grid[r * w + c + 1]);
      }
    }
    std::swap(grid, next);
  }
  return grid;
}

}  // namespace hetscale::algos
