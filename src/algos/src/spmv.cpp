#include "charge_ledger.hpp"
#include "hetscale/algos/spmv.hpp"

#include <algorithm>
#include <memory>
#include <set>
#include <utility>

#include "hetscale/dist/distribution.hpp"
#include "hetscale/marked/suite.hpp"
#include "hetscale/support/error.hpp"
#include "hetscale/support/rng.hpp"
#include "hetscale/vmpi/payload.hpp"

namespace hetscale::algos {

namespace {

using des::Task;
using vmpi::Comm;
using vmpi::Payload;

constexpr int kRoot = 0;
constexpr int kTagRows = 500;
constexpr double kMetadataBytes = 16.0;

/// Modeled wire size of a CSR row block: a 4-byte column index and an
/// 8-byte value per nonzero plus an 8-byte extent per row (and one for the
/// block header), matching the usual int32/double CSR layout.
double block_bytes(std::int64_t rows, std::int64_t nnz) {
  return 12.0 * static_cast<double>(nnz) +
         8.0 * static_cast<double>(rows + 1);
}

struct SpmvShared {
  std::int64_t n = 0;
  std::int64_t sweeps = 0;
  bool with_data = true;
  std::vector<std::int64_t> counts;      ///< rows per rank
  std::vector<std::int64_t> offsets;     ///< first row per rank
  std::vector<std::int64_t> nnz_counts;  ///< nonzeros per rank's block
  CsrMatrix csr;          ///< root's matrix (always built: sizes drive time)
  std::vector<double> x;  ///< root's working vector (assembled y each sweep)
  std::vector<double> y;  ///< final result at root
  ChargeLedger charged;
};

Task<void> spmv_rank(Comm& comm, SpmvShared& sh) {
  const int rank = comm.rank();
  const int p = comm.size();
  const auto r = static_cast<std::size_t>(rank);
  const std::int64_t cnt = sh.counts[r];
  const std::int64_t off = sh.offsets[r];
  const std::int64_t nnzb = sh.nnz_counts[r];
  const double vec_bytes = static_cast<double>(sh.n) * 8.0;

  co_await comm.bcast(kRoot, kMetadataBytes, {});

  // ---- Step 1: distribute CSR row blocks ----
  // Wire format (doubles, exact for the index magnitudes involved):
  // per-row nonzero counts, then column indices, then values.
  CsrMatrix local;  // non-root block, rows rebased to [0, cnt)
  if (rank == kRoot) {
    for (int dst = 0; dst < p; ++dst) {
      if (dst == kRoot) continue;
      const auto d = static_cast<std::size_t>(dst);
      const std::int64_t dcnt = sh.counts[d];
      const std::int64_t doff = sh.offsets[d];
      const std::int64_t dnnz = sh.nnz_counts[d];
      Payload payload;
      if (sh.with_data) {
        payload = Payload::buffer(static_cast<std::size_t>(dcnt + 2 * dnnz));
        auto out = payload.doubles();
        std::size_t w = 0;
        const std::size_t k0 = static_cast<std::size_t>(
            sh.csr.row_ptr[static_cast<std::size_t>(doff)]);
        const std::size_t k1 = static_cast<std::size_t>(
            sh.csr.row_ptr[static_cast<std::size_t>(doff + dcnt)]);
        for (std::int64_t i = 0; i < dcnt; ++i) {
          const auto row = static_cast<std::size_t>(doff + i);
          out[w++] = static_cast<double>(sh.csr.row_ptr[row + 1] -
                                         sh.csr.row_ptr[row]);
        }
        for (std::size_t k = k0; k < k1; ++k) {
          out[w++] = static_cast<double>(sh.csr.cols[k]);
        }
        for (std::size_t k = k0; k < k1; ++k) out[w++] = sh.csr.vals[k];
      }
      co_await comm.send(dst, kTagRows, block_bytes(dcnt, dnnz),
                         std::move(payload));
    }
  } else {
    auto message = co_await comm.recv(kRoot, kTagRows);
    if (sh.with_data) {
      const auto in = message.payload.doubles();
      local.n = sh.n;
      local.row_ptr.assign(1, 0);
      local.row_ptr.reserve(static_cast<std::size_t>(cnt) + 1);
      std::size_t w = 0;
      for (std::int64_t i = 0; i < cnt; ++i) {
        local.row_ptr.push_back(local.row_ptr.back() +
                                static_cast<std::int64_t>(in[w++]));
      }
      local.cols.reserve(static_cast<std::size_t>(nnzb));
      for (std::int64_t k = 0; k < nnzb; ++k) {
        local.cols.push_back(static_cast<std::int64_t>(in[w++]));
      }
      local.vals.assign(in.begin() + static_cast<std::ptrdiff_t>(w),
                        in.end());
    }
  }

  // ---- Step 2: broadcast the initial x ----
  std::vector<double> x;
  {
    Payload x0;
    if (rank == kRoot && sh.with_data) {
      x0 = Payload::copy_of(std::span<const double>(sh.x));
    }
    Payload xb = co_await comm.bcast(kRoot, vec_bytes, std::move(x0));
    if (sh.with_data) {
      const auto src = rank == kRoot ? std::span<const double>(sh.x)
                                     : std::span<const double>(xb.doubles());
      x.assign(src.begin(), src.end());
    }
  }

  // ---- Step 3: sweeps of y = A x, exchanged with a ring allgather ----
  // Every rank needs the full next x, so the blocks trade symmetrically
  // around the ring — there is no root hot spot, and a sweep's critical
  // path is the slowest rank's compute plus the (split-independent) ring.
  // The ring's per-round size is modeled as the mean block (the payloads
  // themselves carry each rank's true block).
  const double ring_bytes = vec_bytes / static_cast<double>(p);
  for (std::int64_t s = 0; s < sh.sweeps; ++s) {
    const double flops = 2.0 * static_cast<double>(nnzb);
    sh.charged.add(rank, flops);
    co_await comm.compute(flops, kSpmvStreamEfficiency);
    Payload y_block;
    if (sh.with_data && cnt > 0) {
      y_block = Payload::buffer(static_cast<std::size_t>(cnt));
      if (rank == kRoot) {
        spmv_rows(sh.csr, off, off + cnt, x, y_block.doubles());
      } else {
        spmv_rows(local, 0, cnt, x, y_block.doubles());
      }
    }
    auto parts = co_await comm.allgather(ring_bytes, std::move(y_block));
    if (sh.with_data) {
      for (int src = 0; src < p; ++src) {
        const auto i = static_cast<std::size_t>(src);
        if (sh.counts[i] == 0) continue;
        const auto block = parts[i].doubles();
        std::copy(block.begin(), block.end(),
                  x.begin() + static_cast<std::ptrdiff_t>(sh.offsets[i]));
      }
    }
  }

  if (rank == kRoot && sh.with_data) sh.y = std::move(x);
}

}  // namespace

CsrMatrix make_synthetic_csr(std::int64_t n, std::uint64_t seed) {
  HETSCALE_REQUIRE(n >= 1, "synthetic CSR needs n >= 1");
  CsrMatrix m;
  m.n = n;
  m.row_ptr.reserve(static_cast<std::size_t>(n) + 1);
  m.row_ptr.push_back(0);
  for (std::int64_t i = 0; i < n; ++i) {
    // Per-row hash stream: the block a rank owns is the same whether the
    // matrix is generated whole or row-by-row.
    SplitMix64 h(seed ^
                 (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(i + 1)));
    const std::int64_t target =
        std::min<std::int64_t>(n, 4 + static_cast<std::int64_t>(h.next() % 13));
    std::set<std::int64_t> row_cols{i};
    while (static_cast<std::int64_t>(row_cols.size()) < target) {
      row_cols.insert(static_cast<std::int64_t>(
          h.next() % static_cast<std::uint64_t>(n)));
    }
    for (const std::int64_t c : row_cols) {
      m.cols.push_back(c);
      const double u = static_cast<double>(h.next() >> 11) * 0x1.0p-53;
      m.vals.push_back(2.0 * u - 1.0);
    }
    m.row_ptr.push_back(m.nnz());
  }
  return m;
}

void spmv_rows(const CsrMatrix& a, std::int64_t row_begin,
               std::int64_t row_end, std::span<const double> x,
               std::span<double> y) {
  HETSCALE_REQUIRE(0 <= row_begin && row_begin <= row_end &&
                       row_end < static_cast<std::int64_t>(a.row_ptr.size()),
                   "spmv_rows: row range out of bounds");
  for (std::int64_t i = row_begin; i < row_end; ++i) {
    double acc = 0.0;
    const auto k0 = static_cast<std::size_t>(
        a.row_ptr[static_cast<std::size_t>(i)]);
    const auto k1 = static_cast<std::size_t>(
        a.row_ptr[static_cast<std::size_t>(i) + 1]);
    for (std::size_t k = k0; k < k1; ++k) {
      acc += a.vals[k] * x[static_cast<std::size_t>(a.cols[k])];
    }
    y[static_cast<std::size_t>(i - row_begin)] = acc;
  }
}

SpmvResult run_parallel_spmv(vmpi::Machine& machine,
                             const SpmvOptions& options) {
  HETSCALE_REQUIRE(options.n >= 1, "SpMV needs n >= 1");
  HETSCALE_REQUIRE(options.sweeps >= 1, "SpMV needs sweeps >= 1");
  const int p = machine.world_size();

  auto shared = std::make_shared<SpmvShared>();
  shared->charged.reset(p);
  shared->n = options.n;
  shared->sweeps = options.sweeps;
  shared->with_data = options.with_data;

  std::vector<double> speeds = options.speeds;
  if (speeds.empty()) speeds = marked::rank_marked_speeds(machine.cluster());
  HETSCALE_REQUIRE(static_cast<int>(speeds.size()) == p,
                   "need one marked speed per rank");

  shared->counts =
      options.distribution == SpmvDistribution::kHeterogeneousBlock
          ? dist::het_block_counts(speeds, options.n)
          : dist::block_counts(p, options.n);
  {
    auto offsets = dist::block_offsets(shared->counts);
    offsets.pop_back();
    shared->offsets = std::move(offsets);
  }

  // The structure (not just the values) drives the simulated time, so the
  // matrix is built even for timing-only runs.
  shared->csr = make_synthetic_csr(options.n, options.seed);
  shared->nnz_counts.resize(static_cast<std::size_t>(p));
  for (std::size_t i = 0; i < static_cast<std::size_t>(p); ++i) {
    const auto lo = static_cast<std::size_t>(shared->offsets[i]);
    const auto hi = lo + static_cast<std::size_t>(shared->counts[i]);
    shared->nnz_counts[i] = shared->csr.row_ptr[hi] - shared->csr.row_ptr[lo];
  }

  if (options.with_data) {
    Rng rng(options.seed);
    shared->x.resize(static_cast<std::size_t>(options.n));
    for (auto& v : shared->x) v = rng.uniform(-1.0, 1.0);
  }

  auto run = machine.run([shared](Comm& comm) -> Task<void> {
    return spmv_rank(comm, *shared);
  });

  SpmvResult result;
  result.run = std::move(run);
  result.n = options.n;
  result.nnz = shared->csr.nnz();
  result.work_flops = static_cast<double>(options.sweeps) * 2.0 *
                      static_cast<double>(result.nnz);
  result.charged_flops = shared->charged.total();
  result.work_imbalance = dist::imbalance(speeds, shared->nnz_counts);
  result.y = std::move(shared->y);
  return result;
}

}  // namespace hetscale::algos
