#include "charge_ledger.hpp"
#include "hetscale/algos/mm.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "hetscale/dist/distribution.hpp"
#include "hetscale/kernels/flops.hpp"
#include "hetscale/marked/suite.hpp"
#include "hetscale/numeric/linsolve.hpp"
#include "hetscale/numeric/matmul.hpp"
#include "hetscale/support/error.hpp"
#include "hetscale/vmpi/payload.hpp"

namespace hetscale::algos {

namespace {

using des::Task;
using vmpi::Comm;
using vmpi::Payload;

constexpr int kRoot = 0;
constexpr int kTagARows = 200;
constexpr int kTagCollect = 201;
constexpr double kMetadataBytes = 16.0;

struct MmShared {
  std::int64_t n = 0;
  bool with_data = true;
  std::vector<std::int64_t> counts;   ///< rows of A per rank
  std::vector<std::int64_t> offsets;  ///< first row per rank
  numeric::Matrix a;  ///< root's inputs
  numeric::Matrix b;
  numeric::Matrix c;  ///< gathered result at root
  ChargeLedger charged;
};

Task<void> mm_rank(Comm& comm, MmShared& sh) {
  const int rank = comm.rank();
  const int p = comm.size();
  const std::int64_t n = sh.n;
  const auto nn = static_cast<std::size_t>(n);
  const auto my_count = sh.counts[static_cast<std::size_t>(rank)];
  const auto my_offset = sh.offsets[static_cast<std::size_t>(rank)];
  const double row_bytes = static_cast<double>(n) * 8.0;

  co_await comm.bcast(kRoot, kMetadataBytes, {});

  // ---- Step 1: distribute A's rows (heterogeneous block) ----
  // Row-major blocks of A are contiguous in the root's storage, so each
  // rank's slice ships as one pooled buffer without a staging Matrix.
  Payload my_a;  // my block of A (non-root, with_data)
  if (rank == kRoot) {
    for (int dst = 0; dst < p; ++dst) {
      if (dst == kRoot) continue;
      const auto count = sh.counts[static_cast<std::size_t>(dst)];
      Payload payload;
      if (sh.with_data) {
        const auto begin = static_cast<std::size_t>(
            sh.offsets[static_cast<std::size_t>(dst)]);
        payload = Payload::copy_of(sh.a.data().subspan(
            begin * nn, static_cast<std::size_t>(count) * nn));
      }
      co_await comm.send(dst, kTagARows,
                         row_bytes * static_cast<double>(count),
                         std::move(payload));
    }
  } else {
    auto message = co_await comm.recv(kRoot, kTagARows);
    if (sh.with_data) my_a = std::move(message.payload);
  }

  // ---- Step 2: distribute B (full matrix to every rank) ----
  // Payload hoisted into a named local (see ge.cpp for the GCC coroutine
  // temporary-lifetime pitfall this avoids).
  Payload b_payload;
  if (rank == kRoot && sh.with_data) {
    b_payload = Payload::copy_of(sh.b.data());
  }
  Payload b_bcast = co_await comm.bcast(
      kRoot, row_bytes * static_cast<double>(n), std::move(b_payload));
  std::span<const double> my_b;
  if (sh.with_data) {
    my_b = rank == kRoot ? std::span<const double>(sh.b.data())
                         : std::span<const double>(b_bcast.doubles());
  }

  // ---- Step 3: local computation, no communication ----
  // multiply_rows_into is the blocked, panel-packed product over the
  // dispatched SIMD tile kernel; it multiplies straight out of the pooled
  // payload buffers and its output is bit-identical across kernel paths.
  sh.charged.add(rank, kernels::mm_rows_flops(n, my_count));
  co_await comm.compute(kernels::mm_rows_flops(n, my_count));
  Payload my_c;
  if (sh.with_data && my_count > 0) {
    my_c = Payload::buffer(static_cast<std::size_t>(my_count) * nn);
    if (rank == kRoot) {
      numeric::multiply_rows_into(
          sh.a.data(), nn, static_cast<std::size_t>(my_offset),
          static_cast<std::size_t>(my_offset + my_count), my_b, nn,
          my_c.doubles());
    } else {
      numeric::multiply_rows_into(my_a.doubles(), nn, 0,
                                  static_cast<std::size_t>(my_count), my_b,
                                  nn, my_c.doubles());
    }
  }

  // ---- Step 4: collect C at process 0 ----
  if (rank != kRoot) {
    co_await comm.send(kRoot, kTagCollect,
                       row_bytes * static_cast<double>(my_count),
                       std::move(my_c));
    co_return;
  }

  if (sh.with_data) {
    sh.c = numeric::Matrix(nn, nn);
    if (my_count > 0) {
      const auto mine = my_c.doubles();
      std::copy(mine.begin(), mine.end(),
                sh.c.data().begin() +
                    static_cast<std::size_t>(my_offset) * nn);
    }
  }
  for (int src = 0; src < p; ++src) {
    if (src == kRoot) continue;
    auto message = co_await comm.recv(src, kTagCollect);
    if (sh.with_data) {
      const auto block = message.payload.doubles();
      const auto begin =
          static_cast<std::size_t>(sh.offsets[static_cast<std::size_t>(src)]);
      std::copy(block.begin(), block.end(),
                sh.c.data().begin() + begin * nn);
    }
  }
}

}  // namespace

MmResult run_parallel_mm(vmpi::Machine& machine, const MmOptions& options) {
  HETSCALE_REQUIRE(options.n >= 1, "MM needs n >= 1");
  const int p = machine.world_size();

  auto shared = std::make_shared<MmShared>();
  shared->charged.reset(p);
  shared->n = options.n;
  shared->with_data = options.with_data;

  std::vector<double> speeds = options.speeds;
  if (speeds.empty()) speeds = marked::rank_marked_speeds(machine.cluster());
  HETSCALE_REQUIRE(static_cast<int>(speeds.size()) == p,
                   "need one marked speed per rank");

  shared->counts =
      options.distribution == MmDistribution::kHeterogeneousBlock
          ? dist::het_block_counts(speeds, options.n)
          : dist::block_counts(p, options.n);
  {
    auto offsets = dist::block_offsets(shared->counts);
    offsets.pop_back();
    shared->offsets = std::move(offsets);
  }

  if (options.with_data) {
    Rng rng(options.seed);
    shared->a = numeric::Matrix::random(static_cast<std::size_t>(options.n),
                                        static_cast<std::size_t>(options.n),
                                        rng);
    shared->b = numeric::Matrix::random(static_cast<std::size_t>(options.n),
                                        static_cast<std::size_t>(options.n),
                                        rng);
  }

  auto run = machine.run([shared](Comm& comm) -> Task<void> {
    return mm_rank(comm, *shared);
  });

  MmResult result;
  result.run = std::move(run);
  result.n = options.n;
  result.work_flops = numeric::mm_workload(static_cast<double>(options.n));
  result.charged_flops = shared->charged.total();
  result.a = std::move(shared->a);
  result.b = std::move(shared->b);
  result.c = std::move(shared->c);
  return result;
}

}  // namespace hetscale::algos
