#include "hetscale/algos/mm.hpp"

#include <any>
#include <memory>
#include <utility>

#include "hetscale/dist/distribution.hpp"
#include "hetscale/kernels/flops.hpp"
#include "hetscale/marked/suite.hpp"
#include "hetscale/numeric/linsolve.hpp"
#include "hetscale/numeric/matmul.hpp"
#include "hetscale/support/error.hpp"

namespace hetscale::algos {

namespace {

using des::Task;
using vmpi::Comm;

constexpr int kRoot = 0;
constexpr int kTagARows = 200;
constexpr int kTagCollect = 201;
constexpr double kMetadataBytes = 16.0;

using MatPtr = std::shared_ptr<numeric::Matrix>;

struct MmShared {
  std::int64_t n = 0;
  bool with_data = true;
  std::vector<std::int64_t> counts;   ///< rows of A per rank
  std::vector<std::int64_t> offsets;  ///< first row per rank
  numeric::Matrix a;  ///< root's inputs
  numeric::Matrix b;
  numeric::Matrix c;  ///< gathered result at root
  double charged = 0.0;
};

Task<void> mm_rank(Comm& comm, MmShared& sh) {
  const int rank = comm.rank();
  const int p = comm.size();
  const std::int64_t n = sh.n;
  const auto my_count = sh.counts[static_cast<std::size_t>(rank)];
  const auto my_offset = sh.offsets[static_cast<std::size_t>(rank)];
  const double row_bytes = static_cast<double>(n) * 8.0;

  co_await comm.bcast(kRoot, kMetadataBytes, {});

  // ---- Step 1: distribute A's rows (heterogeneous block) ----
  numeric::Matrix my_a;  // my block of A (non-root, with_data)
  if (rank == kRoot) {
    for (int dst = 0; dst < p; ++dst) {
      if (dst == kRoot) continue;
      const auto count = sh.counts[static_cast<std::size_t>(dst)];
      std::any payload;
      if (sh.with_data) {
        const auto begin = static_cast<std::size_t>(
            sh.offsets[static_cast<std::size_t>(dst)]);
        auto block = std::make_shared<numeric::Matrix>(
            static_cast<std::size_t>(count), static_cast<std::size_t>(n));
        for (std::size_t r = 0; r < static_cast<std::size_t>(count); ++r) {
          auto src = sh.a.row(begin + r);
          std::copy(src.begin(), src.end(), block->row(r).begin());
        }
        payload = block;
      }
      co_await comm.send(dst, kTagARows,
                         row_bytes * static_cast<double>(count),
                         std::move(payload));
    }
  } else {
    auto message = co_await comm.recv(kRoot, kTagARows);
    if (sh.with_data) my_a = std::move(*message.value<MatPtr>());
  }

  // ---- Step 2: distribute B (full matrix to every rank) ----
  // Payload hoisted into a named local (see ge.cpp for the GCC coroutine
  // temporary-lifetime pitfall this avoids).
  std::any b_payload;
  if (rank == kRoot && sh.with_data) {
    b_payload = std::make_shared<numeric::Matrix>(sh.b);
  }
  std::any b_any = co_await comm.bcast(
      kRoot, row_bytes * static_cast<double>(n), std::move(b_payload));
  MatPtr b_holder;  // keeps the broadcast payload alive on non-root ranks
  const numeric::Matrix* my_b = nullptr;
  if (sh.with_data) {
    if (rank == kRoot) {
      my_b = &sh.b;
    } else {
      b_holder = std::any_cast<MatPtr>(b_any);
      my_b = b_holder.get();
    }
  }

  // ---- Step 3: local computation, no communication ----
  sh.charged += kernels::mm_rows_flops(n, my_count);
  co_await comm.compute(kernels::mm_rows_flops(n, my_count));
  numeric::Matrix my_c;
  if (sh.with_data && my_count > 0) {
    const numeric::Matrix& a_block =
        rank == kRoot ? sh.a : my_a;
    const auto begin =
        rank == kRoot ? static_cast<std::size_t>(my_offset) : std::size_t{0};
    my_c = numeric::multiply_rows(a_block, *my_b, begin,
                                  begin + static_cast<std::size_t>(my_count));
  }

  // ---- Step 4: collect C at process 0 ----
  if (rank != kRoot) {
    std::any payload;
    if (sh.with_data) {
      payload = std::make_shared<numeric::Matrix>(std::move(my_c));
    }
    co_await comm.send(kRoot, kTagCollect,
                       row_bytes * static_cast<double>(my_count),
                       std::move(payload));
    co_return;
  }

  if (sh.with_data) {
    sh.c = numeric::Matrix(static_cast<std::size_t>(n),
                           static_cast<std::size_t>(n));
    for (std::size_t r = 0; r < static_cast<std::size_t>(my_count); ++r) {
      auto src = my_c.row(r);
      auto dst = sh.c.row(static_cast<std::size_t>(my_offset) + r);
      std::copy(src.begin(), src.end(), dst.begin());
    }
  }
  for (int src = 0; src < p; ++src) {
    if (src == kRoot) continue;
    auto message = co_await comm.recv(src, kTagCollect);
    if (sh.with_data) {
      const auto block = message.value<MatPtr>();
      const auto begin =
          static_cast<std::size_t>(sh.offsets[static_cast<std::size_t>(src)]);
      for (std::size_t r = 0; r < block->rows(); ++r) {
        auto brow = block->row(r);
        auto dst = sh.c.row(begin + r);
        std::copy(brow.begin(), brow.end(), dst.begin());
      }
    }
  }
}

}  // namespace

MmResult run_parallel_mm(vmpi::Machine& machine, const MmOptions& options) {
  HETSCALE_REQUIRE(options.n >= 1, "MM needs n >= 1");
  const int p = machine.world_size();

  auto shared = std::make_shared<MmShared>();
  shared->n = options.n;
  shared->with_data = options.with_data;

  std::vector<double> speeds = options.speeds;
  if (speeds.empty()) speeds = marked::rank_marked_speeds(machine.cluster());
  HETSCALE_REQUIRE(static_cast<int>(speeds.size()) == p,
                   "need one marked speed per rank");

  shared->counts =
      options.distribution == MmDistribution::kHeterogeneousBlock
          ? dist::het_block_counts(speeds, options.n)
          : dist::block_counts(p, options.n);
  {
    auto offsets = dist::block_offsets(shared->counts);
    offsets.pop_back();
    shared->offsets = std::move(offsets);
  }

  if (options.with_data) {
    Rng rng(options.seed);
    shared->a = numeric::Matrix::random(static_cast<std::size_t>(options.n),
                                        static_cast<std::size_t>(options.n),
                                        rng);
    shared->b = numeric::Matrix::random(static_cast<std::size_t>(options.n),
                                        static_cast<std::size_t>(options.n),
                                        rng);
  }

  auto run = machine.run([shared](Comm& comm) -> Task<void> {
    return mm_rank(comm, *shared);
  });

  MmResult result;
  result.run = std::move(run);
  result.n = options.n;
  result.work_flops = numeric::mm_workload(static_cast<double>(options.n));
  result.charged_flops = shared->charged;
  result.a = std::move(shared->a);
  result.b = std::move(shared->b);
  result.c = std::move(shared->c);
  return result;
}

}  // namespace hetscale::algos
