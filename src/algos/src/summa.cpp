#include "charge_ledger.hpp"
#include "hetscale/algos/summa.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <utility>

#include "hetscale/dist/grid.hpp"
#include "hetscale/kernels/dispatch.hpp"
#include "hetscale/marked/suite.hpp"
#include "hetscale/numeric/linsolve.hpp"
#include "hetscale/support/error.hpp"
#include "hetscale/vmpi/group.hpp"
#include "hetscale/vmpi/payload.hpp"

namespace hetscale::algos {

namespace {

using des::Task;
using vmpi::Comm;
using vmpi::Payload;

constexpr int kRoot = 0;
constexpr int kTagTiles = 400;
constexpr int kTagCollect = 401;
// One fresh tag per panel step; A (row groups) and B (column groups) use
// disjoint ranges so a rank sitting in both kinds of broadcast at once
// never cross-matches.
constexpr int kTagAPanelBase = 1 << 20;
constexpr int kTagBPanelBase = 1 << 21;
constexpr double kMetadataBytes = 16.0;

using TileKey = std::pair<std::int64_t, std::int64_t>;

struct SummaShared {
  std::int64_t n = 0;
  bool with_data = true;
  std::optional<dist::TileMap> map;
  numeric::Matrix a;  ///< root's inputs
  numeric::Matrix b;
  numeric::Matrix c;  ///< gathered result at root
  ChargeLedger charged;
};

/// Copy one tile out of a row-major n x n matrix into a dense buffer.
void pack_tile(std::span<const double> m, std::int64_t n, const dist::Tile& t,
               double* out) {
  for (std::int64_t i = 0; i < t.rows; ++i) {
    const double* src = m.data() + (t.row0 + i) * n + t.col0;
    std::copy(src, src + t.cols, out + i * t.cols);
  }
}

void unpack_tile(const double* in, const dist::Tile& t, std::span<double> m,
                 std::int64_t n) {
  for (std::int64_t i = 0; i < t.rows; ++i) {
    std::copy(in + i * t.cols, in + (i + 1) * t.cols,
              m.data() + (t.row0 + i) * n + t.col0);
  }
}

Task<void> summa_rank(Comm& comm, SummaShared& sh) {
  const int rank = comm.rank();
  const int p = comm.size();
  const dist::TileMap& map = *sh.map;
  const dist::ProcessGrid& grid = map.grid();
  const int gr = grid.row_of(rank);
  const int gc = grid.col_of(rank);
  const std::int64_t n = sh.n;
  const std::int64_t steps = map.tile_row_count();
  const auto my_tiles = map.tiles_of(rank);

  co_await comm.bcast(kRoot, kMetadataBytes, {});

  // ---- Distribute A and B tiles (root ships each rank one packed slab) ----
  std::map<TileKey, std::vector<double>> a_tiles;
  std::map<TileKey, std::vector<double>> b_tiles;
  std::map<TileKey, std::vector<double>> c_tiles;
  if (rank == kRoot) {
    for (int dst = 0; dst < p; ++dst) {
      const auto tiles = map.tiles_of(dst);
      std::int64_t elements = 0;
      for (const auto& t : tiles) elements += t.elements();
      if (dst == kRoot) {
        if (sh.with_data) {
          for (const auto& t : tiles) {
            auto& a_buf = a_tiles[{t.tile_row, t.tile_col}];
            auto& b_buf = b_tiles[{t.tile_row, t.tile_col}];
            a_buf.resize(static_cast<std::size_t>(t.elements()));
            b_buf.resize(static_cast<std::size_t>(t.elements()));
            pack_tile(sh.a.data(), n, t, a_buf.data());
            pack_tile(sh.b.data(), n, t, b_buf.data());
          }
        }
        continue;
      }
      Payload payload;
      if (sh.with_data) {
        payload =
            Payload::buffer(static_cast<std::size_t>(2 * elements));
        auto out = payload.doubles();
        std::size_t at = 0;
        for (const auto& t : tiles) {
          pack_tile(sh.a.data(), n, t, out.data() + at);
          at += static_cast<std::size_t>(t.elements());
        }
        for (const auto& t : tiles) {
          pack_tile(sh.b.data(), n, t, out.data() + at);
          at += static_cast<std::size_t>(t.elements());
        }
      }
      co_await comm.send(dst, kTagTiles,
                         16.0 * static_cast<double>(elements),
                         std::move(payload));
    }
  } else {
    auto message = co_await comm.recv(kRoot, kTagTiles);
    if (sh.with_data) {
      const auto in = message.payload.doubles();
      std::size_t at = 0;
      for (const auto& t : my_tiles) {
        auto& buf = a_tiles[{t.tile_row, t.tile_col}];
        const auto end = at + static_cast<std::size_t>(t.elements());
        buf.assign(in.begin() + static_cast<std::ptrdiff_t>(at),
                   in.begin() + static_cast<std::ptrdiff_t>(end));
        at += static_cast<std::size_t>(t.elements());
      }
      for (const auto& t : my_tiles) {
        auto& buf = b_tiles[{t.tile_row, t.tile_col}];
        const auto end = at + static_cast<std::size_t>(t.elements());
        buf.assign(in.begin() + static_cast<std::ptrdiff_t>(at),
                   in.begin() + static_cast<std::ptrdiff_t>(end));
        at += static_cast<std::size_t>(t.elements());
      }
    }
  }

  // ---- Panel loop: row-broadcast A, column-broadcast B, local update ----
  vmpi::Group row_group(comm, grid.row_members(gr));
  vmpi::Group col_group(comm, grid.col_members(gc));

  for (std::int64_t k = 0; k < steps; ++k) {
    // A column-panel k restricted to this grid row: tiles (ti, k) with
    // ti = gr (mod r). Their owner sits at grid column k mod c.
    std::vector<dist::Tile> a_panel_tiles;
    for (std::int64_t ti = gr; ti < steps; ti += grid.rows()) {
      a_panel_tiles.push_back(map.tile(ti, k));
    }
    const int a_root = static_cast<int>(k % grid.cols());
    std::int64_t a_elements = 0;
    for (const auto& t : a_panel_tiles) a_elements += t.elements();
    Payload a_send;
    if (sh.with_data && row_group.rank() == a_root) {
      a_send = Payload::buffer(static_cast<std::size_t>(a_elements));
      auto out = a_send.doubles();
      std::size_t at = 0;
      for (const auto& t : a_panel_tiles) {
        const auto& buf = a_tiles.at({t.tile_row, t.tile_col});
        std::copy(buf.begin(), buf.end(),
                  out.begin() + static_cast<std::ptrdiff_t>(at));
        at += buf.size();
      }
    }
    Payload a_panel = co_await row_group.bcast(
        a_root, kTagAPanelBase + static_cast<int>(k),
        8.0 * static_cast<double>(a_elements), std::move(a_send));

    // B row-panel k restricted to this grid column: tiles (k, tj) with
    // tj = gc (mod c). Their owner sits at grid row k mod r.
    std::vector<dist::Tile> b_panel_tiles;
    for (std::int64_t tj = gc; tj < steps; tj += grid.cols()) {
      b_panel_tiles.push_back(map.tile(k, tj));
    }
    const int b_root = static_cast<int>(k % grid.rows());
    std::int64_t b_elements = 0;
    for (const auto& t : b_panel_tiles) b_elements += t.elements();
    Payload b_send;
    if (sh.with_data && col_group.rank() == b_root) {
      b_send = Payload::buffer(static_cast<std::size_t>(b_elements));
      auto out = b_send.doubles();
      std::size_t at = 0;
      for (const auto& t : b_panel_tiles) {
        const auto& buf = b_tiles.at({t.tile_row, t.tile_col});
        std::copy(buf.begin(), buf.end(),
                  out.begin() + static_cast<std::ptrdiff_t>(at));
        at += buf.size();
      }
    }
    Payload b_panel = co_await col_group.bcast(
        b_root, kTagBPanelBase + static_cast<int>(k),
        8.0 * static_cast<double>(b_elements), std::move(b_send));

    // Local update: C[ti,tj] += A[ti,k] · B[k,tj] for every owned C tile.
    const std::int64_t ek = map.tile(k, k).rows;
    double flops = 0.0;
    for (const auto& t : my_tiles) {
      flops += 2.0 * static_cast<double>(t.rows) *
               static_cast<double>(ek) * static_cast<double>(t.cols);
    }
    sh.charged.add(rank, flops);
    co_await comm.compute(flops);
    if (sh.with_data) {
      // Panel offsets of each tile row / tile column index.
      std::map<std::int64_t, std::size_t> a_offset;
      std::size_t at = 0;
      for (const auto& t : a_panel_tiles) {
        a_offset[t.tile_row] = at;
        at += static_cast<std::size_t>(t.elements());
      }
      std::map<std::int64_t, std::size_t> b_offset;
      at = 0;
      for (const auto& t : b_panel_tiles) {
        b_offset[t.tile_col] = at;
        at += static_cast<std::size_t>(t.elements());
      }
      const auto a_data = a_panel.doubles();
      const auto b_data = b_panel.doubles();
      for (const auto& t : my_tiles) {
        auto& c_buf = c_tiles[{t.tile_row, t.tile_col}];
        if (c_buf.empty()) {
          c_buf.assign(static_cast<std::size_t>(t.elements()), 0.0);
        }
        summa_tile_product(a_data.data() + a_offset.at(t.tile_row), t.rows,
                           ek, b_data.data() + b_offset.at(t.tile_col),
                           t.cols, c_buf.data());
      }
    }
  }

  // ---- Collect C at process 0 ----
  std::int64_t my_elements = 0;
  for (const auto& t : my_tiles) my_elements += t.elements();
  if (rank != kRoot) {
    Payload my_c;
    if (sh.with_data) {
      my_c = Payload::buffer(static_cast<std::size_t>(my_elements));
      auto out = my_c.doubles();
      std::size_t at = 0;
      for (const auto& t : my_tiles) {
        const auto& buf = c_tiles.at({t.tile_row, t.tile_col});
        std::copy(buf.begin(), buf.end(),
                  out.begin() + static_cast<std::ptrdiff_t>(at));
        at += buf.size();
      }
    }
    co_await comm.send(kRoot, kTagCollect,
                       8.0 * static_cast<double>(my_elements),
                       std::move(my_c));
    co_return;
  }

  if (sh.with_data) {
    sh.c = numeric::Matrix(static_cast<std::size_t>(n),
                           static_cast<std::size_t>(n));
    for (const auto& t : my_tiles) {
      unpack_tile(c_tiles.at({t.tile_row, t.tile_col}).data(), t, sh.c.data(),
                  n);
    }
  }
  for (int src = 0; src < p; ++src) {
    if (src == kRoot) continue;
    auto message = co_await comm.recv(src, kTagCollect);
    if (sh.with_data) {
      const auto in = message.payload.doubles();
      std::size_t at = 0;
      for (const auto& t : map.tiles_of(src)) {
        unpack_tile(in.data() + at, t, sh.c.data(), n);
        at += static_cast<std::size_t>(t.elements());
      }
    }
  }
}

}  // namespace

void summa_tile_product(const double* a, std::int64_t rows, std::int64_t inner,
                        const double* b, std::int64_t cols, double* c) {
  const auto m = static_cast<std::size_t>(rows);
  const auto kc = static_cast<std::size_t>(inner);
  const auto nc = static_cast<std::size_t>(cols);
  if (m == 0 || kc == 0 || nc == 0) return;
  const kernels::KernelOps& k = kernels::ops();
  // The B tile is already a contiguous kc x nc slab — it *is* the packed
  // panel mm_tile4 wants; no staging copy needed.
  std::size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const double* apack[4] = {a + i * kc, a + (i + 1) * kc, a + (i + 2) * kc,
                              a + (i + 3) * kc};
    double* cpack[4] = {c + i * nc, c + (i + 1) * nc, c + (i + 2) * nc,
                        c + (i + 3) * nc};
    k.mm_tile4(apack, b, kc, nc, cpack);
  }
  for (; i < m; ++i) {
    for (std::size_t kk = 0; kk < kc; ++kk) {
      k.axpy(a[i * kc + kk], b + kk * nc, c + i * nc, nc);
    }
  }
}

SummaResult run_parallel_summa(vmpi::Machine& machine,
                               const SummaOptions& options) {
  HETSCALE_REQUIRE(options.n >= 1, "SUMMA needs n >= 1");
  HETSCALE_REQUIRE(options.tile >= 1, "SUMMA needs tile >= 1");
  const int p = machine.world_size();

  std::vector<double> speeds = options.speeds;
  if (speeds.empty()) speeds = marked::rank_marked_speeds(machine.cluster());
  HETSCALE_REQUIRE(static_cast<int>(speeds.size()) == p,
                   "need one marked speed per rank");

  auto shared = std::make_shared<SummaShared>();
  shared->charged.reset(p);
  shared->n = options.n;
  shared->with_data = options.with_data;
  shared->map.emplace(dist::ProcessGrid::speed_balanced(speeds), options.n,
                      options.n, options.tile, options.tile);

  if (options.with_data) {
    Rng rng(options.seed);
    shared->a = numeric::Matrix::random(static_cast<std::size_t>(options.n),
                                        static_cast<std::size_t>(options.n),
                                        rng);
    shared->b = numeric::Matrix::random(static_cast<std::size_t>(options.n),
                                        static_cast<std::size_t>(options.n),
                                        rng);
  }

  auto run = machine.run([shared](Comm& comm) -> Task<void> {
    return summa_rank(comm, *shared);
  });

  SummaResult result;
  result.run = std::move(run);
  result.n = options.n;
  result.grid_rows = shared->map->grid().rows();
  result.grid_cols = shared->map->grid().cols();
  result.work_flops = numeric::mm_workload(static_cast<double>(options.n));
  result.charged_flops = shared->charged.total();
  result.a = std::move(shared->a);
  result.b = std::move(shared->b);
  result.c = std::move(shared->c);
  return result;
}

}  // namespace hetscale::algos
