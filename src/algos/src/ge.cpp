#include "charge_ledger.hpp"
#include "hetscale/algos/ge.hpp"

#include <algorithm>
#include <array>
#include <memory>
#include <utility>

#include "hetscale/dist/distribution.hpp"
#include "hetscale/kernels/blas1.hpp"
#include "hetscale/kernels/flops.hpp"
#include "hetscale/marked/suite.hpp"
#include "hetscale/numeric/linsolve.hpp"
#include "hetscale/numeric/matrix.hpp"
#include "hetscale/support/error.hpp"
#include "hetscale/vmpi/payload.hpp"

namespace hetscale::algos {

namespace {

using des::Task;
using vmpi::Comm;
using vmpi::Payload;

constexpr int kRoot = 0;
constexpr int kTagRows = 100;
constexpr int kTagCollect = 101;
/// Pipelined variant: pivot of step i travels with tag kTagPivotBase + i.
constexpr int kTagPivotBase = 2000;
constexpr double kMetadataBytes = 16.0;

struct RankData {
  std::vector<std::int64_t> rows;  ///< owned global row indices, ascending
  /// with_data: one contiguous slab of rows.size() x (n + 1) doubles, each
  /// row holding its n coefficients followed by its rhs entry. Keeping the
  /// rhs in-row means the elimination update and the wire format are the
  /// same memory — no per-step pack/unpack copies.
  std::vector<double> slab;
  std::size_t next = 0;  ///< first local index with global row >= step i
};

struct GeShared {
  std::int64_t n = 0;
  bool with_data = true;
  bool barrier_each_step = true;
  std::vector<int> owners;
  std::vector<RankData> ranks;
  numeric::Matrix a0;  ///< original system (kept for the residual)
  std::vector<double> b0;
  ChargeLedger charged;
  std::vector<double> solution;
  double residual = 0.0;
};

std::size_t row_stride(const GeShared& sh) {
  return static_cast<std::size_t>(sh.n + 1);
}

double* local_row(GeShared& sh, RankData& data, std::size_t local) {
  return data.slab.data() + local * row_stride(sh);
}

/// Fill a pooled buffer with `data`'s rows as [row cols..., rhs] per row —
/// exactly the slab's own layout, so this is one memcpy.
Payload pack_rows(const GeShared& sh, const RankData& data) {
  (void)sh;
  return Payload::copy_of(std::span<const double>(data.slab));
}

void unpack_rows(const GeShared& sh, RankData& data, const Payload& pack) {
  const auto doubles = pack.doubles();
  HETSCALE_CHECK(doubles.size() == data.rows.size() * row_stride(sh),
                 "row pack size mismatch");
  data.slab.assign(doubles.begin(), doubles.end());
}

/// Stage 0: process 0 distributes rows (heterogeneous cyclic), preceded by
/// the metadata broadcast of the paper's overhead expression.
Task<void> ge_distribute(Comm& comm, GeShared& sh, RankData& mine) {
  const int rank = comm.rank();
  const int p = comm.size();
  const std::int64_t n = sh.n;
  const double bytes_per_row = static_cast<double>(n + 1) * 8.0;

  co_await comm.bcast(kRoot, kMetadataBytes, {});

  if (rank == kRoot) {
    const std::size_t stride = row_stride(sh);
    for (int dst = 0; dst < p; ++dst) {
      if (dst == kRoot) continue;
      auto& theirs = sh.ranks[static_cast<std::size_t>(dst)];
      Payload payload;
      if (sh.with_data) {
        payload = Payload::buffer(theirs.rows.size() * stride);
        auto out = payload.doubles();
        std::size_t at = 0;
        for (auto g : theirs.rows) {
          auto row = sh.a0.row(static_cast<std::size_t>(g));
          std::copy(row.begin(), row.end(), out.begin() + at);
          out[at + static_cast<std::size_t>(n)] =
              sh.b0[static_cast<std::size_t>(g)];
          at += stride;
        }
      }
      co_await comm.send(dst, kTagRows,
                         bytes_per_row * static_cast<double>(theirs.rows.size()),
                         std::move(payload));
    }
    if (sh.with_data) {
      mine.slab.resize(mine.rows.size() * stride);
      for (std::size_t k = 0; k < mine.rows.size(); ++k) {
        const auto g = static_cast<std::size_t>(mine.rows[k]);
        auto row = sh.a0.row(g);
        double* dst_row = local_row(sh, mine, k);
        std::copy(row.begin(), row.end(), dst_row);
        dst_row[static_cast<std::size_t>(n)] = sh.b0[g];
      }
    }
  } else {
    auto message = co_await comm.recv(kRoot, kTagRows);
    if (sh.with_data) unpack_rows(sh, mine, message.payload);
  }
}

/// Stage 2: collection + back substitution on process 0 (the sequential
/// portion, α = O(1/N)).
Task<void> ge_collect(Comm& comm, GeShared& sh, RankData& mine) {
  const int rank = comm.rank();
  const int p = comm.size();
  const std::int64_t n = sh.n;
  const double bytes_per_row = static_cast<double>(n + 1) * 8.0;

  if (rank != kRoot) {
    Payload payload;
    if (sh.with_data) payload = pack_rows(sh, mine);
    co_await comm.send(kRoot, kTagCollect,
                       bytes_per_row * static_cast<double>(mine.rows.size()),
                       std::move(payload));
    co_return;
  }

  numeric::Matrix u;
  std::vector<double> y;
  const std::size_t stride = row_stride(sh);
  if (sh.with_data) {
    u = numeric::Matrix(static_cast<std::size_t>(n),
                        static_cast<std::size_t>(n));
    y.resize(static_cast<std::size_t>(n));
    for (std::size_t k = 0; k < mine.rows.size(); ++k) {
      const auto g = static_cast<std::size_t>(mine.rows[k]);
      const double* base = local_row(sh, mine, k);
      auto dst = u.row(g);
      std::copy(base, base + n, dst.begin());
      y[g] = base[static_cast<std::size_t>(n)];
    }
  }
  for (int src = 0; src < p; ++src) {
    if (src == kRoot) continue;
    auto message = co_await comm.recv(src, kTagCollect);
    if (sh.with_data) {
      auto& theirs = sh.ranks[static_cast<std::size_t>(src)];
      const auto pack = message.payload.doubles();
      HETSCALE_CHECK(pack.size() == theirs.rows.size() * stride,
                     "collected pack size mismatch");
      for (std::size_t k = 0; k < theirs.rows.size(); ++k) {
        const auto g = static_cast<std::size_t>(theirs.rows[k]);
        const double* base = pack.data() + k * stride;
        auto dst = u.row(g);
        std::copy(base, base + n, dst.begin());
        y[g] = base[static_cast<std::size_t>(n)];
      }
    }
  }

  sh.charged.add(rank, kernels::ge_backsub_flops(n));
  co_await comm.compute(kernels::ge_backsub_flops(n));
  if (sh.with_data) {
    sh.solution = numeric::back_substitute(u, y);
    sh.residual = numeric::residual_inf_norm(sh.a0, sh.solution, sh.b0);
  }
}

/// Normalize local row `local` as pivot row `i` (with_data) and return the
/// broadcast buffer: the trailing columns [i, n) with the rhs folded in as
/// the final element — n - i + 1 doubles. Folding the rhs in keeps the pivot
/// a single pooled buffer end to end; the per-element arithmetic of the
/// elimination is unchanged because the rhs update is the same subtract as
/// any trailing column.
Payload normalize_pivot(GeShared& sh, RankData& mine, std::int64_t i,
                        std::size_t local) {
  Payload pivot;
  if (sh.with_data) {
    double* row = local_row(sh, mine, local);
    const double diag = row[static_cast<std::size_t>(i)];
    HETSCALE_CHECK(diag != 0.0, "zero pivot in pivot-free parallel GE");
    const double inv = 1.0 / diag;
    // Normalize columns [i, n) and the in-row rhs at column n.
    for (std::int64_t c = i; c <= sh.n; ++c) {
      row[static_cast<std::size_t>(c)] *= inv;
    }
    pivot = Payload::copy_of(std::span<const double>(
        row + i, static_cast<std::size_t>(sh.n - i + 1)));
  }
  return pivot;
}

/// Eliminate owned local rows [first, end) at step i against the pivot
/// (trailing columns + folded rhs). Batches target rows through the blocked
/// rank-1 kernel — which routes to the runtime-dispatched SIMD path
/// (kernels/dispatch.hpp) with bit-identical results — and rows whose
/// factor is already zero are skipped, exactly as kernels::eliminate_row
/// does.
void eliminate_rows(GeShared& sh, RankData& mine, std::int64_t i,
                    std::size_t first, const Payload& pivot) {
  if (!sh.with_data) return;
  const auto piv = pivot.doubles();
  constexpr std::size_t kBatch = 16;
  std::array<double*, kBatch> ptrs;
  std::array<double, kBatch> factors;
  std::size_t pending = 0;
  auto flush = [&] {
    kernels::rank1_update(piv, std::span<double* const>(ptrs.data(), pending),
                          std::span<const double>(factors.data(), pending));
    pending = 0;
  };
  for (std::size_t k = first; k < mine.rows.size(); ++k) {
    double* row = local_row(sh, mine, k) + i;
    const double factor = row[0];
    if (factor == 0.0) continue;
    ptrs[pending] = row;
    factors[pending] = factor;
    if (++pending == kBatch) flush();
  }
  if (pending > 0) flush();
}

/// Stage 1, as the paper specifies it: per step, two broadcasts (pivot row
/// + rhs) and a barrier.
Task<void> ge_eliminate_paper(Comm& comm, GeShared& sh, RankData& mine) {
  const int rank = comm.rank();
  const std::int64_t n = sh.n;

  auto charge = [&](double flops) {
    sh.charged.add(rank, flops);
    return comm.compute(flops);
  };

  for (std::int64_t i = 0; i < n; ++i) {
    const int owner = sh.owners[static_cast<std::size_t>(i)];
    while (mine.next < mine.rows.size() && mine.rows[mine.next] < i) {
      ++mine.next;
    }
    const std::int64_t trailing = n - i;

    Payload pivot;
    if (rank == owner) {
      co_await charge(kernels::ge_normalize_flops(n, i));
      HETSCALE_CHECK(!sh.with_data ||
                         (mine.next < mine.rows.size() &&
                          mine.rows[mine.next] == i),
                     "owner does not hold the pivot row");
      pivot = normalize_pivot(sh, mine, i, mine.next);
    }

    // Two broadcasts per step, as in the paper's model N(2 T_bcast + T_bar).
    // The modeled byte counts are unchanged (trailing row, then rhs); the
    // actual pivot buffer rides the first broadcast with the rhs folded in,
    // which costs nothing — virtual time depends only on the modeled bytes.
    // Payloads are built in named locals — GCC's coroutine lowering
    // double-destroys temporaries materialized in conditional operators
    // inside co_await expressions.
    Payload row_payload;
    Payload rhs_payload;
    if (rank == owner) {
      row_payload = pivot;  // refcount bump, not a data copy
      if (sh.with_data) rhs_payload = Payload(pivot.doubles().back());
    }
    Payload row_bcast = co_await comm.bcast(
        owner, static_cast<double>(trailing) * 8.0, std::move(row_payload));
    Payload rhs_bcast =
        co_await comm.bcast(owner, 8.0, std::move(rhs_payload));
    (void)rhs_bcast;  // the rhs already arrived folded into the row buffer
    if (sh.with_data && rank != owner) pivot = std::move(row_bcast);

    std::size_t first = mine.next;
    if (first < mine.rows.size() && mine.rows[first] == i) ++first;
    const auto count = mine.rows.size() - first;
    if (count > 0) {
      co_await charge(static_cast<double>(count) *
                      kernels::ge_eliminate_row_flops(n, i));
      eliminate_rows(sh, mine, i, first, pivot);
    }
    if (sh.barrier_each_step) co_await comm.barrier();
  }
}

/// Stage 1, pipelined (lookahead-1): the owner of row i+1 eliminates it
/// first and fires the next pivot with isend, overlapping the distribution
/// with everyone's remaining step-i eliminations. One message per pivot,
/// no barriers; arithmetic identical per row, only the schedule differs.
Task<void> ge_eliminate_pipelined(Comm& comm, GeShared& sh, RankData& mine) {
  const int rank = comm.rank();
  const int p = comm.size();
  const std::int64_t n = sh.n;

  auto charge = [&](double flops) {
    sh.charged.add(rank, flops);
    return comm.compute(flops);
  };

  auto pivot_bytes = [&](std::int64_t i) {
    return static_cast<double>(n - i + 1) * 8.0;  // trailing row + rhs
  };

  auto send_pivot = [&](std::int64_t i, const Payload& pivot) {
    const int tag = kTagPivotBase + static_cast<int>(i);
    for (int dst = 0; dst < p; ++dst) {
      if (dst == rank) continue;
      // Copying a Payload only bumps the buffer refcount — every receiver
      // reads the same pooled block.
      comm.isend(dst, tag, pivot_bytes(i), pivot);
    }
  };

  // Bootstrap: the owner of row 0 prepares and fires pivot 0.
  Payload held_pivot;  // the pivot this rank owns for the *next* step
  if (rank == sh.owners[0]) {
    co_await charge(kernels::ge_normalize_flops(n, 0));
    while (mine.next < mine.rows.size() && mine.rows[mine.next] < 0) {
      ++mine.next;
    }
    held_pivot = normalize_pivot(sh, mine, 0, 0);
    send_pivot(0, held_pivot);
  }

  for (std::int64_t i = 0; i < n; ++i) {
    const int owner = sh.owners[static_cast<std::size_t>(i)];
    while (mine.next < mine.rows.size() && mine.rows[mine.next] < i) {
      ++mine.next;
    }

    Payload pivot;
    if (rank == owner) {
      pivot = std::move(held_pivot);
    } else {
      auto message =
          co_await comm.recv(owner, kTagPivotBase + static_cast<int>(i));
      if (sh.with_data) pivot = std::move(message.payload);
    }

    std::size_t first = mine.next;
    if (first < mine.rows.size() && mine.rows[first] == i) ++first;

    // Lookahead: if this rank owns row i+1, update it first and fire the
    // next pivot before touching the rest of the block.
    std::size_t remaining_first = first;
    if (i + 1 < n &&
        rank == sh.owners[static_cast<std::size_t>(i + 1)]) {
      HETSCALE_CHECK(!sh.with_data ||
                         (first < mine.rows.size() &&
                          mine.rows[first] == i + 1),
                     "lookahead owner does not hold row i+1");
      co_await charge(kernels::ge_eliminate_row_flops(n, i));
      eliminate_rows(sh, mine, i, first, pivot);
      // eliminate_rows updated [first, end); re-do bookkeeping: we only
      // wanted row i+1 now, so do it precisely instead:
      remaining_first = first + 1;
      co_await charge(kernels::ge_normalize_flops(n, i + 1));
      held_pivot = normalize_pivot(sh, mine, i + 1, first);
      send_pivot(i + 1, held_pivot);
    }

    const auto count = mine.rows.size() - remaining_first;
    if (count > 0) {
      co_await charge(static_cast<double>(count) *
                      kernels::ge_eliminate_row_flops(n, i));
      if (remaining_first == first) {
        eliminate_rows(sh, mine, i, remaining_first, pivot);
      }
      // (when the lookahead ran, eliminate_rows above already covered the
      // whole [first, end) range with identical arithmetic)
    }
  }
}

Task<void> ge_rank(Comm& comm, GeShared& sh, bool pipelined) {
  RankData& mine = sh.ranks[static_cast<std::size_t>(comm.rank())];
  co_await ge_distribute(comm, sh, mine);
  if (pipelined) {
    co_await ge_eliminate_pipelined(comm, sh, mine);
  } else {
    co_await ge_eliminate_paper(comm, sh, mine);
  }
  co_await ge_collect(comm, sh, mine);
}

}  // namespace

GeResult run_parallel_ge(vmpi::Machine& machine, const GeOptions& options) {
  HETSCALE_REQUIRE(options.n >= 1, "GE needs n >= 1");
  const int p = machine.world_size();

  auto shared = std::make_shared<GeShared>();
  shared->charged.reset(p);
  shared->n = options.n;
  shared->with_data = options.with_data;
  shared->barrier_each_step = options.barrier_each_step;
  shared->ranks.resize(static_cast<std::size_t>(p));

  std::vector<double> speeds = options.speeds;
  if (speeds.empty()) speeds = marked::rank_marked_speeds(machine.cluster());
  HETSCALE_REQUIRE(static_cast<int>(speeds.size()) == p,
                   "need one marked speed per rank");

  shared->owners =
      options.distribution == GeDistribution::kHeterogeneousCyclic
          ? dist::het_cyclic_owners(speeds, options.n)
          : dist::cyclic_owners(p, options.n);
  for (std::int64_t g = 0; g < options.n; ++g) {
    shared->ranks[static_cast<std::size_t>(
                      shared->owners[static_cast<std::size_t>(g)])]
        .rows.push_back(g);
  }

  if (options.with_data) {
    Rng rng(options.seed);
    shared->a0 = numeric::Matrix::random_diagonally_dominant(
        static_cast<std::size_t>(options.n), rng);
    shared->b0.resize(static_cast<std::size_t>(options.n));
    for (auto& v : shared->b0) v = rng.uniform(-1.0, 1.0);
  }

  const bool pipelined = options.pipelined;
  auto run = machine.run([shared, pipelined](Comm& comm) -> Task<void> {
    return ge_rank(comm, *shared, pipelined);
  });

  GeResult result;
  result.run = std::move(run);
  result.n = options.n;
  result.work_flops = numeric::ge_workload(static_cast<double>(options.n));
  result.charged_flops = shared->charged.total();
  result.solution = std::move(shared->solution);
  result.residual = shared->residual;
  return result;
}

}  // namespace hetscale::algos
