#include "hetscale/algos/ge.hpp"

#include <any>
#include <memory>
#include <utility>

#include "hetscale/dist/distribution.hpp"
#include "hetscale/kernels/blas1.hpp"
#include "hetscale/kernels/flops.hpp"
#include "hetscale/marked/suite.hpp"
#include "hetscale/numeric/linsolve.hpp"
#include "hetscale/numeric/matrix.hpp"
#include "hetscale/support/error.hpp"

namespace hetscale::algos {

namespace {

using des::Task;
using vmpi::Comm;

constexpr int kRoot = 0;
constexpr int kTagRows = 100;
constexpr int kTagCollect = 101;
/// Pipelined variant: pivot of step i travels with tag kTagPivotBase + i.
constexpr int kTagPivotBase = 2000;
constexpr double kMetadataBytes = 16.0;

using Pack = std::shared_ptr<std::vector<double>>;

struct RankData {
  std::vector<std::int64_t> rows;  ///< owned global row indices, ascending
  std::vector<std::vector<double>> a_rows;  ///< with_data: full-length rows
  std::vector<double> rhs;
  std::size_t next = 0;  ///< first local index with global row >= step i
};

struct GeShared {
  std::int64_t n = 0;
  bool with_data = true;
  bool barrier_each_step = true;
  std::vector<int> owners;
  std::vector<RankData> ranks;
  numeric::Matrix a0;       ///< original system (kept for the residual)
  std::vector<double> b0;
  double charged = 0.0;
  std::vector<double> solution;
  double residual = 0.0;
};

/// Pack the rows owned by `data` as [row cols..., rhs] per row.
Pack pack_rows(const GeShared& sh, const RankData& data) {
  auto pack = std::make_shared<std::vector<double>>();
  pack->reserve(data.rows.size() * static_cast<std::size_t>(sh.n + 1));
  for (std::size_t k = 0; k < data.rows.size(); ++k) {
    pack->insert(pack->end(), data.a_rows[k].begin(), data.a_rows[k].end());
    pack->push_back(data.rhs[k]);
  }
  return pack;
}

void unpack_rows(const GeShared& sh, RankData& data, const Pack& pack) {
  const auto stride = static_cast<std::size_t>(sh.n + 1);
  HETSCALE_CHECK(pack->size() == data.rows.size() * stride,
                 "row pack size mismatch");
  data.a_rows.resize(data.rows.size());
  data.rhs.resize(data.rows.size());
  for (std::size_t k = 0; k < data.rows.size(); ++k) {
    const double* base = pack->data() + k * stride;
    data.a_rows[k].assign(base, base + sh.n);
    data.rhs[k] = base[static_cast<std::size_t>(sh.n)];
  }
}

/// Stage 0: process 0 distributes rows (heterogeneous cyclic), preceded by
/// the metadata broadcast of the paper's overhead expression.
Task<void> ge_distribute(Comm& comm, GeShared& sh, RankData& mine) {
  const int rank = comm.rank();
  const int p = comm.size();
  const std::int64_t n = sh.n;
  const double bytes_per_row = static_cast<double>(n + 1) * 8.0;

  co_await comm.bcast(kRoot, kMetadataBytes, {});

  if (rank == kRoot) {
    for (int dst = 0; dst < p; ++dst) {
      if (dst == kRoot) continue;
      auto& theirs = sh.ranks[static_cast<std::size_t>(dst)];
      std::any payload;
      if (sh.with_data) {
        auto pack = std::make_shared<std::vector<double>>();
        pack->reserve(theirs.rows.size() * static_cast<std::size_t>(n + 1));
        for (auto g : theirs.rows) {
          auto row = sh.a0.row(static_cast<std::size_t>(g));
          pack->insert(pack->end(), row.begin(), row.end());
          pack->push_back(sh.b0[static_cast<std::size_t>(g)]);
        }
        payload = pack;
      }
      co_await comm.send(dst, kTagRows,
                         bytes_per_row * static_cast<double>(theirs.rows.size()),
                         std::move(payload));
    }
    if (sh.with_data) {
      for (auto g : mine.rows) {
        auto row = sh.a0.row(static_cast<std::size_t>(g));
        mine.a_rows.emplace_back(row.begin(), row.end());
        mine.rhs.push_back(sh.b0[static_cast<std::size_t>(g)]);
      }
    }
  } else {
    auto message = co_await comm.recv(kRoot, kTagRows);
    if (sh.with_data) unpack_rows(sh, mine, message.value<Pack>());
  }
}

/// Stage 2: collection + back substitution on process 0 (the sequential
/// portion, α = O(1/N)).
Task<void> ge_collect(Comm& comm, GeShared& sh, RankData& mine) {
  const int rank = comm.rank();
  const int p = comm.size();
  const std::int64_t n = sh.n;
  const double bytes_per_row = static_cast<double>(n + 1) * 8.0;

  if (rank != kRoot) {
    std::any payload;
    if (sh.with_data) payload = pack_rows(sh, mine);
    co_await comm.send(kRoot, kTagCollect,
                       bytes_per_row * static_cast<double>(mine.rows.size()),
                       std::move(payload));
    co_return;
  }

  numeric::Matrix u;
  std::vector<double> y;
  if (sh.with_data) {
    u = numeric::Matrix(static_cast<std::size_t>(n),
                        static_cast<std::size_t>(n));
    y.resize(static_cast<std::size_t>(n));
    for (std::size_t k = 0; k < mine.rows.size(); ++k) {
      const auto g = static_cast<std::size_t>(mine.rows[k]);
      auto dst = u.row(g);
      std::copy(mine.a_rows[k].begin(), mine.a_rows[k].end(), dst.begin());
      y[g] = mine.rhs[k];
    }
  }
  for (int src = 0; src < p; ++src) {
    if (src == kRoot) continue;
    auto message = co_await comm.recv(src, kTagCollect);
    if (sh.with_data) {
      auto& theirs = sh.ranks[static_cast<std::size_t>(src)];
      const auto pack = message.value<Pack>();
      const auto stride = static_cast<std::size_t>(n + 1);
      HETSCALE_CHECK(pack->size() == theirs.rows.size() * stride,
                     "collected pack size mismatch");
      for (std::size_t k = 0; k < theirs.rows.size(); ++k) {
        const auto g = static_cast<std::size_t>(theirs.rows[k]);
        const double* base = pack->data() + k * stride;
        auto dst = u.row(g);
        std::copy(base, base + n, dst.begin());
        y[g] = base[static_cast<std::size_t>(n)];
      }
    }
  }

  sh.charged += kernels::ge_backsub_flops(n);
  co_await comm.compute(kernels::ge_backsub_flops(n));
  if (sh.with_data) {
    sh.solution = numeric::back_substitute(u, y);
    sh.residual = numeric::residual_inf_norm(sh.a0, sh.solution, sh.b0);
  }
}

/// Normalize local row `local` as pivot row `i` (with_data) and return its
/// trailing columns + rhs for broadcasting.
std::pair<Pack, double> normalize_pivot(GeShared& sh, RankData& mine,
                                        std::int64_t i, std::size_t local) {
  Pack pivot;
  double pivot_rhs = 0.0;
  if (sh.with_data) {
    auto& row = mine.a_rows[local];
    const double diag = row[static_cast<std::size_t>(i)];
    HETSCALE_CHECK(diag != 0.0, "zero pivot in pivot-free parallel GE");
    const double inv = 1.0 / diag;
    for (std::int64_t c = i; c < sh.n; ++c) {
      row[static_cast<std::size_t>(c)] *= inv;
    }
    mine.rhs[local] *= inv;
    pivot = std::make_shared<std::vector<double>>(row.begin() + i, row.end());
    pivot_rhs = mine.rhs[local];
  }
  return {std::move(pivot), pivot_rhs};
}

/// Eliminate owned local rows [first, end) at step i against the pivot.
void eliminate_rows(GeShared& sh, RankData& mine, std::int64_t i,
                    std::size_t first, const Pack& pivot, double pivot_rhs) {
  if (!sh.with_data) return;
  std::span<const double> piv(*pivot);
  for (std::size_t k = first; k < mine.rows.size(); ++k) {
    auto row = std::span<double>(mine.a_rows[k])
                   .subspan(static_cast<std::size_t>(i));
    kernels::eliminate_row(piv, pivot_rhs, row, mine.rhs[k], 0);
  }
}

/// Stage 1, as the paper specifies it: per step, two broadcasts (pivot row
/// + rhs) and a barrier.
Task<void> ge_eliminate_paper(Comm& comm, GeShared& sh, RankData& mine) {
  const int rank = comm.rank();
  const std::int64_t n = sh.n;

  auto charge = [&](double flops) {
    sh.charged += flops;
    return comm.compute(flops);
  };

  for (std::int64_t i = 0; i < n; ++i) {
    const int owner = sh.owners[static_cast<std::size_t>(i)];
    while (mine.next < mine.rows.size() && mine.rows[mine.next] < i) {
      ++mine.next;
    }
    const std::int64_t trailing = n - i;

    Pack pivot;
    double pivot_rhs = 0.0;
    if (rank == owner) {
      co_await charge(kernels::ge_normalize_flops(n, i));
      HETSCALE_CHECK(!sh.with_data ||
                         (mine.next < mine.rows.size() &&
                          mine.rows[mine.next] == i),
                     "owner does not hold the pivot row");
      std::tie(pivot, pivot_rhs) = normalize_pivot(sh, mine, i, mine.next);
    }

    // Two broadcasts per step, as in the paper's model N(2 T_bcast + T_bar).
    // Payloads are built in named locals — GCC's coroutine lowering
    // double-destroys temporaries materialized in conditional operators
    // inside co_await expressions.
    std::any row_payload;
    std::any rhs_payload;
    if (rank == owner) {
      row_payload = pivot;
      rhs_payload = pivot_rhs;
    }
    std::any row_any = co_await comm.bcast(
        owner, static_cast<double>(trailing) * 8.0, std::move(row_payload));
    std::any rhs_any =
        co_await comm.bcast(owner, 8.0, std::move(rhs_payload));
    if (sh.with_data && rank != owner) {
      pivot = std::any_cast<Pack>(row_any);
      pivot_rhs = std::any_cast<double>(rhs_any);
    }

    std::size_t first = mine.next;
    if (first < mine.rows.size() && mine.rows[first] == i) ++first;
    const auto count = mine.rows.size() - first;
    if (count > 0) {
      co_await charge(static_cast<double>(count) *
                      kernels::ge_eliminate_row_flops(n, i));
      eliminate_rows(sh, mine, i, first, pivot, pivot_rhs);
    }
    if (sh.barrier_each_step) co_await comm.barrier();
  }
}

/// Stage 1, pipelined (lookahead-1): the owner of row i+1 eliminates it
/// first and fires the next pivot with isend, overlapping the distribution
/// with everyone's remaining step-i eliminations. One message per pivot,
/// no barriers; arithmetic identical per row, only the schedule differs.
Task<void> ge_eliminate_pipelined(Comm& comm, GeShared& sh, RankData& mine) {
  const int rank = comm.rank();
  const int p = comm.size();
  const std::int64_t n = sh.n;

  auto charge = [&](double flops) {
    sh.charged += flops;
    return comm.compute(flops);
  };

  auto pivot_bytes = [&](std::int64_t i) {
    return static_cast<double>(n - i + 1) * 8.0;  // trailing row + rhs
  };

  auto send_pivot = [&](std::int64_t i, const Pack& pivot,
                        double pivot_rhs) {
    std::any payload;
    if (sh.with_data) {
      auto pack = std::make_shared<std::vector<double>>(*pivot);
      pack->push_back(pivot_rhs);
      payload = pack;
    }
    const int tag = kTagPivotBase + static_cast<int>(i);
    for (int dst = 0; dst < p; ++dst) {
      if (dst == rank) continue;
      comm.isend(dst, tag, pivot_bytes(i), payload);
    }
  };

  // Bootstrap: the owner of row 0 prepares and fires pivot 0.
  Pack held_pivot;       // the pivot this rank owns for the *next* step
  double held_rhs = 0.0;
  if (rank == sh.owners[0]) {
    co_await charge(kernels::ge_normalize_flops(n, 0));
    while (mine.next < mine.rows.size() && mine.rows[mine.next] < 0) {
      ++mine.next;
    }
    std::tie(held_pivot, held_rhs) = normalize_pivot(sh, mine, 0, 0);
    send_pivot(0, held_pivot, held_rhs);
  }

  for (std::int64_t i = 0; i < n; ++i) {
    const int owner = sh.owners[static_cast<std::size_t>(i)];
    while (mine.next < mine.rows.size() && mine.rows[mine.next] < i) {
      ++mine.next;
    }

    Pack pivot;
    double pivot_rhs = 0.0;
    if (rank == owner) {
      pivot = std::move(held_pivot);
      pivot_rhs = held_rhs;
    } else {
      auto message =
          co_await comm.recv(owner, kTagPivotBase + static_cast<int>(i));
      if (sh.with_data) {
        const auto pack = message.value<Pack>();
        pivot_rhs = pack->back();
        pivot = std::make_shared<std::vector<double>>(pack->begin(),
                                                      pack->end() - 1);
      }
    }

    std::size_t first = mine.next;
    if (first < mine.rows.size() && mine.rows[first] == i) ++first;

    // Lookahead: if this rank owns row i+1, update it first and fire the
    // next pivot before touching the rest of the block.
    std::size_t remaining_first = first;
    if (i + 1 < n &&
        rank == sh.owners[static_cast<std::size_t>(i + 1)]) {
      HETSCALE_CHECK(!sh.with_data ||
                         (first < mine.rows.size() &&
                          mine.rows[first] == i + 1),
                     "lookahead owner does not hold row i+1");
      co_await charge(kernels::ge_eliminate_row_flops(n, i));
      eliminate_rows(sh, mine, i, first, pivot, pivot_rhs);
      // eliminate_rows updated [first, end); re-do bookkeeping: we only
      // wanted row i+1 now, so do it precisely instead:
      remaining_first = first + 1;
      co_await charge(kernels::ge_normalize_flops(n, i + 1));
      std::tie(held_pivot, held_rhs) =
          normalize_pivot(sh, mine, i + 1, first);
      send_pivot(i + 1, held_pivot, held_rhs);
    }

    const auto count = mine.rows.size() - remaining_first;
    if (count > 0) {
      co_await charge(static_cast<double>(count) *
                      kernels::ge_eliminate_row_flops(n, i));
      if (remaining_first == first) {
        eliminate_rows(sh, mine, i, remaining_first, pivot, pivot_rhs);
      }
      // (when the lookahead ran, eliminate_rows above already covered the
      // whole [first, end) range with identical arithmetic)
    }
  }
}

Task<void> ge_rank(Comm& comm, GeShared& sh, bool pipelined) {
  RankData& mine = sh.ranks[static_cast<std::size_t>(comm.rank())];
  co_await ge_distribute(comm, sh, mine);
  if (pipelined) {
    co_await ge_eliminate_pipelined(comm, sh, mine);
  } else {
    co_await ge_eliminate_paper(comm, sh, mine);
  }
  co_await ge_collect(comm, sh, mine);
}

}  // namespace

GeResult run_parallel_ge(vmpi::Machine& machine, const GeOptions& options) {
  HETSCALE_REQUIRE(options.n >= 1, "GE needs n >= 1");
  const int p = machine.world_size();

  auto shared = std::make_shared<GeShared>();
  shared->n = options.n;
  shared->with_data = options.with_data;
  shared->barrier_each_step = options.barrier_each_step;
  shared->ranks.resize(static_cast<std::size_t>(p));

  std::vector<double> speeds = options.speeds;
  if (speeds.empty()) speeds = marked::rank_marked_speeds(machine.cluster());
  HETSCALE_REQUIRE(static_cast<int>(speeds.size()) == p,
                   "need one marked speed per rank");

  shared->owners =
      options.distribution == GeDistribution::kHeterogeneousCyclic
          ? dist::het_cyclic_owners(speeds, options.n)
          : dist::cyclic_owners(p, options.n);
  for (std::int64_t g = 0; g < options.n; ++g) {
    shared->ranks[static_cast<std::size_t>(
                      shared->owners[static_cast<std::size_t>(g)])]
        .rows.push_back(g);
  }

  if (options.with_data) {
    Rng rng(options.seed);
    shared->a0 = numeric::Matrix::random_diagonally_dominant(
        static_cast<std::size_t>(options.n), rng);
    shared->b0.resize(static_cast<std::size_t>(options.n));
    for (auto& v : shared->b0) v = rng.uniform(-1.0, 1.0);
  }

  const bool pipelined = options.pipelined;
  auto run = machine.run([shared, pipelined](Comm& comm) -> Task<void> {
    return ge_rank(comm, *shared, pipelined);
  });

  GeResult result;
  result.run = std::move(run);
  result.n = options.n;
  result.work_flops = numeric::ge_workload(static_cast<double>(options.n));
  result.charged_flops = shared->charged;
  result.solution = std::move(shared->solution);
  result.residual = shared->residual;
  return result;
}

}  // namespace hetscale::algos
