#include "charge_ledger.hpp"
#include "hetscale/algos/ge_pivot.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <memory>
#include <utility>

#include "hetscale/dist/distribution.hpp"
#include "hetscale/kernels/blas1.hpp"
#include "hetscale/kernels/flops.hpp"
#include "hetscale/marked/suite.hpp"
#include "hetscale/numeric/linsolve.hpp"
#include "hetscale/support/error.hpp"
#include "hetscale/support/rng.hpp"
#include "hetscale/vmpi/payload.hpp"

namespace hetscale::algos {

namespace {

using des::Task;
using vmpi::Comm;
using vmpi::Payload;

constexpr int kRoot = 0;
constexpr int kTagRows = 120;
constexpr int kTagCollect = 121;
/// Row-swap exchange of step i travels with tag kTagSwapBase + i.
constexpr int kTagSwapBase = 1 << 22;
constexpr double kMetadataBytes = 16.0;
/// Pivot-search contribution: (|candidate|, row index) as two doubles.
constexpr double kSearchBytes = 16.0;

struct RankData {
  std::vector<std::int64_t> rows;  ///< owned global slot indices, ascending
  /// with_data: one contiguous slab of rows.size() x (n + 1) doubles (row
  /// coefficients + in-row rhs), same layout as ge.cpp.
  std::vector<double> slab;
  /// Per owned slot, the elimination factors recorded during the current
  /// panel (factors[k][jj - p0] for panel step jj). Swaps move a row's
  /// factor history along with its contents.
  std::vector<std::vector<double>> factors;
};

struct Shared {
  std::int64_t n = 0;
  std::int64_t panel = 0;
  bool with_data = true;
  std::uint64_t seed = 0;
  std::vector<int> owners;
  std::vector<RankData> ranks;
  /// pivot_inv[i]: 1 / diag recorded by slot i's owner when it normalized
  /// step i (owner-private bookkeeping; slot i never changes after step i).
  std::vector<double> pivot_inv;
  numeric::Matrix a0;  ///< original system (kept for the residual)
  std::vector<double> b0;
  ChargeLedger charged;
  std::int64_t row_swaps = 0;
  std::vector<double> solution;
  double residual = 0.0;
};

std::size_t row_stride(const Shared& sh) {
  return static_cast<std::size_t>(sh.n + 1);
}

double* local_row(Shared& sh, RankData& data, std::size_t local) {
  return data.slab.data() + local * row_stride(sh);
}

/// First local index whose global slot is >= g.
std::size_t local_lower_bound(const RankData& data, std::int64_t g) {
  return static_cast<std::size_t>(
      std::lower_bound(data.rows.begin(), data.rows.end(), g) -
      data.rows.begin());
}

/// Timing-only pivot choice for step i: a seeded hash over [i, n). All ranks
/// derive the same value locally; see the header for why data-free runs
/// model rather than replay the data-driven schedule.
std::int64_t surrogate_pivot(std::uint64_t seed, std::int64_t i,
                             std::int64_t n) {
  SplitMix64 mix(seed ^
                 (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(i + 1)));
  return i + static_cast<std::int64_t>(
                 mix.next() % static_cast<std::uint64_t>(n - i));
}

Task<void> distribute(Comm& comm, Shared& sh, RankData& mine) {
  const int rank = comm.rank();
  const int p = comm.size();
  const std::int64_t n = sh.n;
  const double bytes_per_row = static_cast<double>(n + 1) * 8.0;
  const std::size_t stride = row_stride(sh);

  co_await comm.bcast(kRoot, kMetadataBytes, {});

  if (rank == kRoot) {
    for (int dst = 0; dst < p; ++dst) {
      if (dst == kRoot) continue;
      auto& theirs = sh.ranks[static_cast<std::size_t>(dst)];
      Payload payload;
      if (sh.with_data) {
        payload = Payload::buffer(theirs.rows.size() * stride);
        auto out = payload.doubles();
        std::size_t at = 0;
        for (auto g : theirs.rows) {
          auto row = sh.a0.row(static_cast<std::size_t>(g));
          std::copy(row.begin(), row.end(),
                    out.begin() + static_cast<std::ptrdiff_t>(at));
          out[at + static_cast<std::size_t>(n)] =
              sh.b0[static_cast<std::size_t>(g)];
          at += stride;
        }
      }
      co_await comm.send(
          dst, kTagRows,
          bytes_per_row * static_cast<double>(theirs.rows.size()),
          std::move(payload));
    }
    if (sh.with_data) {
      mine.slab.resize(mine.rows.size() * stride);
      for (std::size_t k = 0; k < mine.rows.size(); ++k) {
        const auto g = static_cast<std::size_t>(mine.rows[k]);
        auto row = sh.a0.row(g);
        double* dst_row = local_row(sh, mine, k);
        std::copy(row.begin(), row.end(), dst_row);
        dst_row[static_cast<std::size_t>(n)] = sh.b0[g];
      }
    }
  } else {
    auto message = co_await comm.recv(kRoot, kTagRows);
    if (sh.with_data) {
      const auto doubles = message.payload.doubles();
      HETSCALE_CHECK(doubles.size() == mine.rows.size() * stride,
                     "row pack size mismatch");
      mine.slab.assign(doubles.begin(), doubles.end());
    }
  }
  mine.factors.assign(mine.rows.size(), {});
}

Task<void> collect(Comm& comm, Shared& sh, RankData& mine) {
  const int rank = comm.rank();
  const int p = comm.size();
  const std::int64_t n = sh.n;
  const double bytes_per_row = static_cast<double>(n + 1) * 8.0;
  const std::size_t stride = row_stride(sh);

  if (rank != kRoot) {
    Payload payload;
    if (sh.with_data) {
      payload = Payload::copy_of(std::span<const double>(mine.slab));
    }
    co_await comm.send(kRoot, kTagCollect,
                       bytes_per_row * static_cast<double>(mine.rows.size()),
                       std::move(payload));
    co_return;
  }

  numeric::Matrix u;
  std::vector<double> y;
  if (sh.with_data) {
    u = numeric::Matrix(static_cast<std::size_t>(n),
                        static_cast<std::size_t>(n));
    y.resize(static_cast<std::size_t>(n));
    for (std::size_t k = 0; k < mine.rows.size(); ++k) {
      const auto g = static_cast<std::size_t>(mine.rows[k]);
      const double* base = local_row(sh, mine, k);
      auto dst = u.row(g);
      std::copy(base, base + n, dst.begin());
      y[g] = base[static_cast<std::size_t>(n)];
    }
  }
  for (int src = 0; src < p; ++src) {
    if (src == kRoot) continue;
    auto message = co_await comm.recv(src, kTagCollect);
    if (sh.with_data) {
      auto& theirs = sh.ranks[static_cast<std::size_t>(src)];
      const auto pack = message.payload.doubles();
      HETSCALE_CHECK(pack.size() == theirs.rows.size() * stride,
                     "collected pack size mismatch");
      for (std::size_t k = 0; k < theirs.rows.size(); ++k) {
        const auto g = static_cast<std::size_t>(theirs.rows[k]);
        const double* base = pack.data() + k * stride;
        auto dst = u.row(g);
        std::copy(base, base + n, dst.begin());
        y[g] = base[static_cast<std::size_t>(n)];
      }
    }
  }

  sh.charged.add(rank, kernels::ge_backsub_flops(n));
  co_await comm.compute(kernels::ge_backsub_flops(n));
  if (sh.with_data) {
    sh.solution = numeric::back_substitute(u, y);
    sh.residual = numeric::residual_inf_norm(sh.a0, sh.solution, sh.b0);
  }
}

/// Batched `row -= factor * pivot` over a list of (pointer, factor) pairs,
/// skipping exact-zero factors like the unblocked reference does.
class Rank1Batch {
 public:
  explicit Rank1Batch(std::span<const double> pivot) : pivot_(pivot) {}

  void add(double* row, double factor) {
    if (factor == 0.0) return;
    ptrs_[pending_] = row;
    factors_[pending_] = factor;
    if (++pending_ == kBatch) flush();
  }

  void flush() {
    if (pending_ == 0) return;
    kernels::rank1_update(
        pivot_, std::span<double* const>(ptrs_.data(), pending_),
        std::span<const double>(factors_.data(), pending_));
    pending_ = 0;
  }

 private:
  static constexpr std::size_t kBatch = 16;
  std::span<const double> pivot_;
  std::array<double*, kBatch> ptrs_;
  std::array<double, kBatch> factors_;
  std::size_t pending_ = 0;
};

Task<void> eliminate(Comm& comm, Shared& sh, RankData& mine) {
  const int rank = comm.rank();
  const int p = comm.size();
  const std::int64_t n = sh.n;
  const std::size_t stride = row_stride(sh);

  auto charge = [&](double flops) {
    sh.charged.add(rank, flops);
    return comm.compute(flops);
  };

  for (std::int64_t p0 = 0; p0 < n; p0 += sh.panel) {
    const std::int64_t p1 = std::min(p0 + sh.panel, n);
    const std::int64_t t_len = n - p1 + 1;  // trailing columns + in-row rhs

    for (std::int64_t i = p0; i < p1; ++i) {
      const int owner = sh.owners[static_cast<std::size_t>(i)];

      // ---- (1) pivot search: local argmax of |column i| over slots >= i,
      // gathered to slot i's owner, winner broadcast back ----
      const std::size_t cand_first = local_lower_bound(mine, i);
      const auto candidates = mine.rows.size() - cand_first;
      co_await charge(static_cast<double>(candidates));
      double best_abs = -1.0;
      double best_row = -1.0;
      if (sh.with_data) {
        for (std::size_t k = cand_first; k < mine.rows.size(); ++k) {
          const double v =
              std::abs(local_row(sh, mine, k)[static_cast<std::size_t>(i)]);
          if (v > best_abs) {  // strict: the lowest row among equals wins
            best_abs = v;
            best_row = static_cast<double>(mine.rows[k]);
          }
        }
      }
      Payload search_payload;
      if (sh.with_data) {
        search_payload = Payload::buffer(2);
        search_payload.doubles()[0] = best_abs;
        search_payload.doubles()[1] = best_row;
      }
      std::vector<Payload> votes =
          co_await comm.gather(owner, kSearchBytes, std::move(search_payload));

      std::int64_t r = sh.with_data ? -1 : surrogate_pivot(sh.seed, i, n);
      if (rank == owner && sh.with_data) {
        double win_abs = -1.0;
        for (int src = 0; src < p; ++src) {
          const auto vote = votes[static_cast<std::size_t>(src)].doubles();
          if (vote[0] < 0.0) continue;  // rank owns no candidate slots
          if (vote[0] > win_abs ||
              (vote[0] == win_abs && vote[1] < static_cast<double>(r))) {
            win_abs = vote[0];
            r = static_cast<std::int64_t>(vote[1]);
          }
        }
        HETSCALE_CHECK(win_abs > 0.0, "pivoted GE: matrix is singular");
      }
      Payload chosen_payload;
      if (rank == owner && sh.with_data) {
        chosen_payload = Payload(static_cast<double>(r));
      }
      Payload chosen =
          co_await comm.bcast(owner, 8.0, std::move(chosen_payload));
      if (sh.with_data && rank != owner) {
        r = static_cast<std::int64_t>(chosen.as<double>());
      }
      if (rank == owner && r != i) ++sh.row_swaps;

      // ---- (2) row swap: slots i and r exchange contents (full row plus
      // the row's panel factor history) ----
      if (r != i) {
        const int owner_r = sh.owners[static_cast<std::size_t>(r)];
        const std::size_t flen = static_cast<std::size_t>(i - p0);
        if (owner == owner_r) {
          if (rank == owner && sh.with_data) {
            const std::size_t ki = local_lower_bound(mine, i);
            const std::size_t kr = local_lower_bound(mine, r);
            double* row_i = local_row(sh, mine, ki);
            double* row_r = local_row(sh, mine, kr);
            std::swap_ranges(row_i, row_i + stride, row_r);
            std::swap(mine.factors[ki], mine.factors[kr]);
          }
        } else if (rank == owner || rank == owner_r) {
          const int peer = rank == owner ? owner_r : owner;
          const std::int64_t own_slot = rank == owner ? i : r;
          const double bytes =
              8.0 * static_cast<double>(stride + flen);
          const std::size_t local = local_lower_bound(mine, own_slot);
          Payload out;
          if (sh.with_data) {
            out = Payload::buffer(stride + flen);
            auto buf = out.doubles();
            const double* row = local_row(sh, mine, local);
            std::copy(row, row + stride, buf.begin());
            std::copy(mine.factors[local].begin(), mine.factors[local].end(),
                      buf.begin() + static_cast<std::ptrdiff_t>(stride));
          }
          const int tag = kTagSwapBase + static_cast<int>(i);
          co_await comm.send(peer, tag, bytes, std::move(out));
          auto message = co_await comm.recv(peer, tag);
          if (sh.with_data) {
            const auto buf = message.payload.doubles();
            HETSCALE_CHECK(buf.size() == stride + flen, "swap pack mismatch");
            std::copy(buf.begin(),
                      buf.begin() + static_cast<std::ptrdiff_t>(stride),
                      local_row(sh, mine, local));
            mine.factors[local].assign(
                buf.begin() + static_cast<std::ptrdiff_t>(stride), buf.end());
          }
        }
      }

      // ---- (3) normalize the panel segment of the pivot row, broadcast ----
      const std::int64_t seg_len = p1 - i;
      Payload seg_payload;
      if (rank == owner) {
        co_await charge(static_cast<double>(seg_len));
        if (sh.with_data) {
          const std::size_t ki = local_lower_bound(mine, i);
          double* row = local_row(sh, mine, ki);
          const double diag = row[static_cast<std::size_t>(i)];
          HETSCALE_CHECK(diag != 0.0, "pivoted GE: zero pivot after search");
          const double inv = 1.0 / diag;
          for (std::int64_t c = i; c < p1; ++c) {
            row[static_cast<std::size_t>(c)] *= inv;
          }
          sh.pivot_inv[static_cast<std::size_t>(i)] = inv;
          seg_payload = Payload::copy_of(std::span<const double>(
              row + i, static_cast<std::size_t>(seg_len)));
        }
      }
      Payload seg = co_await comm.bcast(
          owner, 8.0 * static_cast<double>(seg_len), std::move(seg_payload));

      // ---- (4) eager panel elimination of owned slots > i; the factor is
      // recorded for the deferred trailing update ----
      const std::size_t target_first = local_lower_bound(mine, i + 1);
      const auto targets = mine.rows.size() - target_first;
      if (targets > 0) {
        co_await charge(static_cast<double>(targets) * 2.0 *
                        static_cast<double>(seg_len));
        if (sh.with_data) {
          Rank1Batch batch(seg.doubles());
          for (std::size_t k = target_first; k < mine.rows.size(); ++k) {
            double* row = local_row(sh, mine, k) + i;
            const double factor = row[0];
            mine.factors[k].push_back(factor);
            batch.add(row, factor);
          }
          batch.flush();
        }
      }
    }

    // ---- (5) panel end: every pivot row's raw trailing part + factor
    // history is broadcast; every rank redundantly reconstructs the
    // normalized trailing rows, then applies the deferred updates ----
    const std::int64_t nb = p1 - p0;
    std::vector<std::vector<double>> t_norm(static_cast<std::size_t>(nb));
    double recon_flops = 0.0;
    for (std::int64_t ii = p0; ii < p1; ++ii) {
      const int owner = sh.owners[static_cast<std::size_t>(ii)];
      const std::size_t flen = static_cast<std::size_t>(ii - p0);
      Payload trail_payload;
      if (rank == owner && sh.with_data) {
        const std::size_t ki = local_lower_bound(mine, ii);
        trail_payload =
            Payload::buffer(flen + 1 + static_cast<std::size_t>(t_len));
        auto buf = trail_payload.doubles();
        std::copy(mine.factors[ki].begin(), mine.factors[ki].end(),
                  buf.begin());
        buf[flen] = sh.pivot_inv[static_cast<std::size_t>(ii)];
        const double* row = local_row(sh, mine, ki);
        std::copy(row + p1, row + n + 1,
                  buf.begin() + static_cast<std::ptrdiff_t>(flen + 1));
      }
      Payload trail = co_await comm.bcast(
          owner,
          8.0 * static_cast<double>(flen + 1 + static_cast<std::size_t>(t_len)),
          std::move(trail_payload));
      recon_flops += 2.0 * static_cast<double>(flen) *
                         static_cast<double>(t_len) +
                     static_cast<double>(t_len);
      if (sh.with_data) {
        const auto buf = trail.doubles();
        const double inv = buf[flen];
        auto& t = t_norm[static_cast<std::size_t>(ii - p0)];
        t.assign(buf.begin() + static_cast<std::ptrdiff_t>(flen + 1),
                 buf.end());
        // Apply the pivot row's own deferred updates (ascending, exactly the
        // unblocked order), then normalize with the recorded 1/diag.
        for (std::size_t jj = 0; jj < flen; ++jj) {
          const double f = buf[jj];
          if (f == 0.0) continue;
          const auto& prev = t_norm[jj];
          for (std::int64_t c = 0; c < t_len; ++c) {
            t[static_cast<std::size_t>(c)] -=
                f * prev[static_cast<std::size_t>(c)];
          }
        }
        for (std::int64_t c = 0; c < t_len; ++c) {
          t[static_cast<std::size_t>(c)] *= inv;
        }
        if (rank == owner) {
          const std::size_t ki = local_lower_bound(mine, ii);
          std::copy(t.begin(), t.end(), local_row(sh, mine, ki) + p1);
        }
      }
    }
    // The reconstruction runs on every rank (redundant by design — it is
    // cheaper than round-tripping nb more broadcasts), then each rank
    // updates its own trailing rows.
    const std::size_t own_first = local_lower_bound(mine, p1);
    const auto own_rows = mine.rows.size() - own_first;
    const double update_flops = static_cast<double>(own_rows) *
                                static_cast<double>(nb) * 2.0 *
                                static_cast<double>(t_len);
    co_await charge(recon_flops + update_flops);
    if (sh.with_data) {
      for (std::int64_t jj = 0; jj < nb; ++jj) {
        Rank1Batch batch(t_norm[static_cast<std::size_t>(jj)]);
        for (std::size_t k = own_first; k < mine.rows.size(); ++k) {
          batch.add(local_row(sh, mine, k) + p1,
                    mine.factors[k][static_cast<std::size_t>(jj)]);
        }
        batch.flush();
      }
      for (auto& f : mine.factors) f.clear();
    }
  }
}

Task<void> pivot_rank(Comm& comm, Shared& sh) {
  RankData& mine = sh.ranks[static_cast<std::size_t>(comm.rank())];
  co_await distribute(comm, sh, mine);
  co_await eliminate(comm, sh, mine);
  co_await collect(comm, sh, mine);
}

}  // namespace

GePivotResult run_parallel_ge_pivot(vmpi::Machine& machine,
                                    const GePivotOptions& options) {
  HETSCALE_REQUIRE(options.n >= 1, "pivoted GE needs n >= 1");
  HETSCALE_REQUIRE(options.panel >= 1, "pivoted GE needs panel >= 1");
  const int p = machine.world_size();

  auto shared = std::make_shared<Shared>();
  shared->charged.reset(p);
  shared->n = options.n;
  shared->panel = options.panel;
  shared->with_data = options.with_data;
  shared->seed = options.seed;
  shared->ranks.resize(static_cast<std::size_t>(p));
  shared->pivot_inv.assign(static_cast<std::size_t>(options.n), 0.0);

  std::vector<double> speeds = options.speeds;
  if (speeds.empty()) speeds = marked::rank_marked_speeds(machine.cluster());
  HETSCALE_REQUIRE(static_cast<int>(speeds.size()) == p,
                   "need one marked speed per rank");

  shared->owners =
      options.distribution == GeDistribution::kHeterogeneousCyclic
          ? dist::het_cyclic_owners(speeds, options.n)
          : dist::cyclic_owners(p, options.n);
  for (std::int64_t g = 0; g < options.n; ++g) {
    shared->ranks[static_cast<std::size_t>(
                      shared->owners[static_cast<std::size_t>(g)])]
        .rows.push_back(g);
  }

  if (options.with_data) {
    if (options.system_a.rows() > 0) {
      HETSCALE_REQUIRE(
          options.system_a.rows() == static_cast<std::size_t>(options.n) &&
              options.system_a.cols() == static_cast<std::size_t>(options.n) &&
              options.system_b.size() == static_cast<std::size_t>(options.n),
          "explicit system must be n x n with an n-vector rhs");
      shared->a0 = options.system_a;
      shared->b0 = options.system_b;
    } else {
      Rng rng(options.seed);
      shared->a0 = numeric::Matrix::random_diagonally_dominant(
          static_cast<std::size_t>(options.n), rng);
      shared->b0.resize(static_cast<std::size_t>(options.n));
      for (auto& v : shared->b0) v = rng.uniform(-1.0, 1.0);
    }
  }

  auto run = machine.run([shared](Comm& comm) -> Task<void> {
    return pivot_rank(comm, *shared);
  });

  GePivotResult result;
  result.run = std::move(run);
  result.n = options.n;
  result.work_flops = numeric::ge_workload(static_cast<double>(options.n));
  result.charged_flops = shared->charged.total();
  result.row_swaps = shared->row_swaps;
  result.solution = std::move(shared->solution);
  result.residual = shared->residual;
  return result;
}

}  // namespace hetscale::algos
