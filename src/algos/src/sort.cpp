#include "charge_ledger.hpp"
#include "hetscale/algos/sort.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <span>
#include <utility>

#include "hetscale/dist/distribution.hpp"
#include "hetscale/marked/suite.hpp"
#include "hetscale/support/error.hpp"
#include "hetscale/support/rng.hpp"
#include "hetscale/vmpi/payload.hpp"

namespace hetscale::algos {

namespace {

using des::Task;
using vmpi::Comm;
using vmpi::Payload;

constexpr int kRoot = 0;
constexpr int kTagKeys = 400;
constexpr int kTagCollect = 401;
constexpr double kMetadataBytes = 16.0;
constexpr double kBytesPerKey = 8.0;

struct SortShared {
  std::int64_t n = 0;
  SortSplitters splitters = SortSplitters::kSpeedProportional;
  std::vector<double> speeds;
  std::vector<std::int64_t> counts;  ///< initial keys per rank
  std::vector<double> keys0;         ///< input at root
  std::vector<double> sorted;        ///< output at root
  std::vector<std::int64_t> bucket_counts;
  ChargeLedger charged;
};

/// 3 ops per key per log2(N) level — one sorting pass.
double sort_pass_flops(std::int64_t keys, std::int64_t n) {
  return 3.0 * static_cast<double>(keys) *
         std::log2(static_cast<double>(n));
}

Task<void> sort_rank(Comm& comm, SortShared& sh) {
  const int rank = comm.rank();
  const int p = comm.size();
  const std::int64_t n = sh.n;
  const auto my_count = sh.counts[static_cast<std::size_t>(rank)];

  auto charge = [&](double flops) {
    sh.charged.add(rank, flops);
    return comm.compute(flops);
  };

  co_await comm.bcast(kRoot, kMetadataBytes, {});

  // ---- Phase 1: distribute keys proportionally to marked speeds ----
  std::vector<double> local;
  if (rank == kRoot) {
    const auto offsets = dist::block_offsets(sh.counts);
    for (int dst = 0; dst < p; ++dst) {
      if (dst == kRoot) continue;
      const auto begin =
          static_cast<std::size_t>(offsets[static_cast<std::size_t>(dst)]);
      const auto end =
          static_cast<std::size_t>(offsets[static_cast<std::size_t>(dst) + 1]);
      Payload pack = Payload::copy_of(
          std::span<const double>(sh.keys0).subspan(begin, end - begin));
      co_await comm.send(
          dst, kTagKeys,
          kBytesPerKey *
              static_cast<double>(sh.counts[static_cast<std::size_t>(dst)]),
          std::move(pack));
    }
    local.assign(sh.keys0.begin(),
                 sh.keys0.begin() + offsets[1]);
  } else {
    auto message = co_await comm.recv(kRoot, kTagKeys);
    const auto keys = message.payload.doubles();
    local.assign(keys.begin(), keys.end());
  }

  // ---- Phase 2: local sort ----
  co_await charge(sort_pass_flops(my_count, n));
  std::sort(local.begin(), local.end());

  // ---- Phase 3: regular sampling (with oversampling) and splitters ----
  // Each rank contributes s >> p-1 local quantiles so the combined sample
  // resolves *arbitrary* cut fractions — required for speed-proportional
  // splitters, whose cut points are not multiples of 1/p.
  std::vector<double> splitters;
  if (p > 1) {
    HETSCALE_CHECK(!local.empty(),
                   "sample sort needs every rank to own at least one key");
    const int oversample = std::max(32, 4 * (p - 1));
    Payload samples = Payload::buffer(static_cast<std::size_t>(oversample));
    auto sample_out = samples.doubles();
    for (int k = 1; k <= oversample; ++k) {
      const auto at = static_cast<std::size_t>(
          static_cast<double>(local.size()) * k / (oversample + 1));
      sample_out[static_cast<std::size_t>(k - 1)] =
          local[std::min(at, local.size() - 1)];
    }
    auto gathered = co_await comm.gather(
        kRoot, kBytesPerKey * static_cast<double>(oversample),
        std::move(samples));
    Payload splitters_payload;
    if (rank == kRoot) {
      std::vector<double> all;
      for (const auto& part : gathered) {
        const auto vec = part.doubles();
        all.insert(all.end(), vec.begin(), vec.end());
      }
      std::sort(all.begin(), all.end());
      splitters_payload = Payload::buffer(static_cast<std::size_t>(p - 1));
      auto chosen = splitters_payload.doubles();
      double cumulative = 0.0;
      double total_speed = 0.0;
      for (double c : sh.speeds) total_speed += c;
      for (int k = 1; k < p; ++k) {
        double fraction;
        if (sh.splitters == SortSplitters::kSpeedProportional) {
          cumulative += sh.speeds[static_cast<std::size_t>(k - 1)];
          fraction = cumulative / total_speed;
        } else {
          fraction = static_cast<double>(k) / p;
        }
        const auto at = static_cast<std::size_t>(
            fraction * static_cast<double>(all.size()));
        chosen[static_cast<std::size_t>(k - 1)] =
            all[std::min(at, all.size() - 1)];
      }
    }
    Payload splitters_bcast = co_await comm.bcast(
        kRoot, kBytesPerKey * static_cast<double>(p - 1),
        std::move(splitters_payload));
    const auto chosen = splitters_bcast.doubles();
    splitters.assign(chosen.begin(), chosen.end());
  }

  // ---- Phase 4: bucket partition + alltoall ----
  std::vector<double> received;
  if (p > 1) {
    std::vector<Payload> parts;
    std::vector<double> parts_bytes;
    auto cursor = local.begin();
    for (int d = 0; d < p; ++d) {
      auto until = d + 1 < p
                       ? std::upper_bound(cursor, local.end(),
                                          splitters[static_cast<std::size_t>(d)])
                       : local.end();
      const auto count = static_cast<std::size_t>(until - cursor);
      parts_bytes.push_back(kBytesPerKey * static_cast<double>(count));
      parts.push_back(Payload::copy_of(std::span<const double>(
          local.data() + (cursor - local.begin()), count)));
      cursor = until;
    }
    auto incoming = co_await comm.alltoall(parts_bytes, std::move(parts));
    for (const auto& part : incoming) {
      const auto vec = part.doubles();
      received.insert(received.end(), vec.begin(), vec.end());
    }
  } else {
    received = std::move(local);
  }
  sh.bucket_counts[static_cast<std::size_t>(rank)] =
      static_cast<std::int64_t>(received.size());

  // ---- Phase 5: final local sort of the bucket ----
  co_await charge(
      sort_pass_flops(static_cast<std::int64_t>(received.size()), n));
  std::sort(received.begin(), received.end());

  // ---- Phase 6: gather — concatenation by rank is globally sorted ----
  const double bytes = kBytesPerKey * static_cast<double>(received.size());
  if (rank != kRoot) {
    Payload mine = Payload::copy_of(received);
    co_await comm.send(kRoot, kTagCollect, bytes, std::move(mine));
    co_return;
  }
  sh.sorted.reserve(static_cast<std::size_t>(n));
  sh.sorted.insert(sh.sorted.end(), received.begin(), received.end());
  for (int src = 1; src < p; ++src) {
    auto message = co_await comm.recv(src, kTagCollect);
    const auto vec = message.payload.doubles();
    sh.sorted.insert(sh.sorted.end(), vec.begin(), vec.end());
  }
}

}  // namespace

double sort_workload(std::int64_t n) {
  HETSCALE_REQUIRE(n >= 2, "sort workload needs n >= 2");
  return 6.0 * static_cast<double>(n) * std::log2(static_cast<double>(n));
}

SortResult run_parallel_sort(vmpi::Machine& machine,
                             const SortOptions& options) {
  const int p = machine.world_size();
  HETSCALE_REQUIRE(options.n >= static_cast<std::int64_t>(p) * p &&
                       options.n >= 2,
                   "sample sort needs n >= p^2 keys");

  auto shared = std::make_shared<SortShared>();
  shared->charged.reset(p);
  shared->n = options.n;
  shared->splitters = options.splitters;
  shared->bucket_counts.assign(static_cast<std::size_t>(p), 0);

  shared->speeds = options.speeds;
  if (shared->speeds.empty()) {
    shared->speeds = marked::rank_marked_speeds(machine.cluster());
  }
  HETSCALE_REQUIRE(static_cast<int>(shared->speeds.size()) == p,
                   "need one marked speed per rank");
  shared->counts = dist::het_block_counts(shared->speeds, options.n);

  Rng rng(options.seed);
  shared->keys0.resize(static_cast<std::size_t>(options.n));
  for (auto& key : shared->keys0) key = rng.uniform(0.0, 1.0);

  auto run = machine.run([shared](Comm& comm) -> Task<void> {
    return sort_rank(comm, *shared);
  });

  SortResult result;
  result.run = std::move(run);
  result.n = options.n;
  result.work_flops = sort_workload(options.n);
  result.charged_flops = shared->charged.total();
  result.sorted = std::move(shared->sorted);
  result.bucket_counts = std::move(shared->bucket_counts);
  return result;
}

}  // namespace hetscale::algos
