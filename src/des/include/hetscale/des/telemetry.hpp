// QueueTelemetry — optional counters and an occupancy timeline for the
// ladder event queue.
//
// The queue holds a raw pointer to one of these (null by default), so the
// instrumented increments compile to a tested-and-skipped branch when
// telemetry is unbound — the scheduler's front-slot fast path never
// touches the ladder at all, and the overlap path pays one predictable
// branch. vmpi::Machine binds a telemetry block when it is profiled and
// copies the totals into its RunProfile after the run.
//
// Times are plain doubles (= des::SimTime) so the struct stays header-only
// and dependency-free for the obs layer to mirror.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hetscale::des {

struct QueueTelemetry {
  std::uint64_t pushes = 0;       ///< events pushed into the ladder
  std::uint64_t pops = 0;         ///< events popped from the ladder
  std::uint64_t far_inserts = 0;  ///< pushes that landed in the far list
  std::uint64_t rebuilds = 0;     ///< epoch rebuilds (far list re-bucketed)

  /// One occupancy sample: pending events at a virtual time. Sampled at
  /// every epoch rebuild — the instants the queue re-examines its whole
  /// population anyway — so sampling adds no per-event work.
  struct Sample {
    double time = 0.0;
    std::uint64_t depth = 0;
  };
  std::vector<Sample> occupancy;

  /// Rebuild instants that would have been sampled but fell past the
  /// kMaxSamples cap. A truncated timeline is still useful, but only when
  /// the truncation is visible — analyze reports this count instead of
  /// pretending the run ended where the samples do.
  std::uint64_t samples_dropped = 0;

  /// Occupancy samples are capped; past this the counters keep counting
  /// but the timeline stops growing (long runs stay bounded).
  static constexpr std::size_t kMaxSamples = 4096;
};

}  // namespace hetscale::des
