// An indexed ladder/bucket queue for pending simulation events.
//
// The scheduler's workload is dominated by short `delay(dt)` hops: events are
// inserted a little ahead of the virtual clock and popped in near-FIFO order.
// A binary heap pays O(log n) compares and shuffles the backing array on
// every operation; this queue instead spreads the pending window across a
// fixed array of buckets ("rungs") and drains them in order:
//
//   * events inside the current epoch  [epoch_start, epoch_end)  land in the
//     bucket indexed by (time - epoch_start) / width;
//   * events beyond the epoch are appended, unsorted, to a far list;
//   * when the ladder drains, the far list is re-bucketed into a fresh epoch
//     whose width adapts to the observed time span.
//
// A bucket is sorted once, when the drain reaches it; later insertions into
// the *current* bucket keep it sorted (they can only land at or after the
// drain position: the scheduler guarantees time >= now and sequence numbers
// are monotone). Buckets and the far list are reusable vectors — slabs whose
// capacity survives across epochs — so steady-state operation allocates
// nothing.
//
// Pop order is EXACTLY ascending (time, sequence) — the same total order as
// the heap it replaces; the determinism suite and the property tests in
// tests/des/test_event_queue.cpp hold the two implementations side by side.
#pragma once

#include <algorithm>
#include <array>
#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "hetscale/des/telemetry.hpp"
#include "hetscale/support/error.hpp"

namespace hetscale::des {

/// Virtual time, in seconds.
using SimTime = double;

/// One pending coroutine resumption.
struct Event {
  SimTime time = 0.0;
  std::uint64_t sequence = 0;
  std::coroutine_handle<> handle;
};

/// Ascending (time, sequence) — the scheduler's total order.
inline bool event_before(const Event& a, const Event& b) {
  if (a.time != b.time) return a.time < b.time;
  return a.sequence < b.sequence;
}

class LadderEventQueue {
 public:
  // Dedicated counter, not `ladder_count_ + far_.size()`: far_.size()
  // divides a pointer difference by sizeof(Event), and both predicates sit
  // on the scheduler's per-event paths.
  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }

  /// Bind an optional telemetry block (null detaches). Unbound — the
  /// default — the instrumented paths reduce to one untaken branch each.
  void bind_telemetry(QueueTelemetry* telemetry) { telemetry_ = telemetry; }

  /// Insert an event. The caller (the scheduler) guarantees that `e.time` is
  /// never behind the last popped time, which is what keeps insertions into
  /// the currently-draining bucket order-safe.
  void push(const Event& e) {
    ++count_;
    if (telemetry_ != nullptr) ++telemetry_->pushes;
    if (ladder_count_ == 0 || e.time >= epoch_end_) {
      if (telemetry_ != nullptr) ++telemetry_->far_inserts;
      far_.push_back(e);
      return;
    }
    std::size_t idx = static_cast<std::size_t>(
        (e.time - epoch_start_) * inv_width_);
    if (idx >= kBuckets) idx = kBuckets - 1;
    if (idx < cur_) idx = cur_;  // float-edge clamp; see file comment
    auto& bucket = buckets_[idx];
    if (idx == cur_) {
      // The draining bucket stays sorted: binary-insert into the unpopped
      // tail (the drain window [drain_pos_, drain_end_)). An insert landing
      // exactly at the drain position — the hot "timing wheel" rhythm where
      // each pop schedules the next global minimum — reuses the dead slot
      // left by the last pop instead of shifting the tail.
      Event* const at = std::upper_bound(
          drain_pos_, drain_end_, e,
          [](const Event& a, const Event& b) { return event_before(a, b); });
      if (at == drain_pos_ && drain_pos_ != bucket.data()) {
        *--drain_pos_ = e;
      } else {
        // insert() may reallocate the slab: re-derive the window afterwards.
        const std::ptrdiff_t pos = drain_pos_ - bucket.data();
        bucket.insert(bucket.begin() + (at - bucket.data()), e);
        drain_pos_ = bucket.data() + pos;
        drain_end_ = bucket.data() + bucket.size();
      }
    } else {
      bucket.push_back(e);  // sorted later, when the drain arrives
    }
    ++ladder_count_;
  }

  /// Remove and return the minimum event in (time, sequence) order.
  Event pop_min() {
    HETSCALE_DCHECK(!empty(), "pop from an empty event queue");
    --count_;
    if (telemetry_ != nullptr) ++telemetry_->pops;
    if (ladder_count_ == 0) {
      // Small-count fast path. The simulator's steady state is a handful of
      // pending events (one per rank, mostly), and with an empty ladder they
      // are ALL in the far list — a linear min-scan over a few contiguous
      // elements is exact and far cheaper than building an epoch. Removal is
      // swap-with-back: the far list is unsorted by design, and neither
      // bucket assignment nor the per-bucket sort depends on its order, so
      // pop results stay bit-identical.
      if (far_.size() <= kLinearScanMax) {
        std::size_t min_i = 0;
        for (std::size_t i = 1; i < far_.size(); ++i) {
          if (event_before(far_[i], far_[min_i])) min_i = i;
        }
        const Event e = far_[min_i];
        far_[min_i] = far_.back();
        far_.pop_back();
        return e;
      }
      rebuild();
    }
    // The drain window is a pair of raw pointers, not an index: `pos <
    // bucket.size()` would divide a pointer difference by sizeof(Event) on
    // every pop, and `buckets_[cur_]` would re-chase the slab pointer.
    for (;;) {
      if (drain_pos_ != drain_end_) {
        --ladder_count_;
        return *drain_pos_++;
      }
      buckets_[cur_].clear();  // keeps capacity: the slab is reused
      ++cur_;
      HETSCALE_DCHECK(cur_ < kBuckets, "ladder count out of sync");
      auto& bucket = buckets_[cur_];
      sort_bucket(bucket);
      drain_pos_ = bucket.data();
      drain_end_ = bucket.data() + bucket.size();
    }
  }

 private:
  static constexpr std::size_t kBuckets = 64;
  /// Below this population an empty-ladder pop scans the far list directly
  /// instead of starting an epoch. 16 events is ~3 cache lines; the scan
  /// beats the rebuild's width math + sort until well past that.
  static constexpr std::size_t kLinearScanMax = 16;

  static void sort_bucket(std::vector<Event>& bucket) {
    if (bucket.size() < 2) return;  // most rungs hold 0-1 events
    std::sort(bucket.begin(), bucket.end(),
              [](const Event& a, const Event& b) { return event_before(a, b); });
  }

  /// Start a new epoch from the far list (called with an empty ladder).
  void rebuild();

  std::array<std::vector<Event>, kBuckets> buckets_;
  std::vector<Event> far_;          ///< events at or beyond epoch_end_
  std::size_t count_ = 0;           ///< total pending (ladder + far)
  std::size_t ladder_count_ = 0;    ///< events currently in buckets_
  std::size_t cur_ = 0;             ///< bucket being drained
  Event* drain_pos_ = nullptr;      ///< next unpopped event in buckets_[cur_]
  Event* drain_end_ = nullptr;      ///< one past the last event in buckets_[cur_]
  SimTime epoch_start_ = 0.0;
  SimTime epoch_end_ = 0.0;
  double inv_width_ = 0.0;
  QueueTelemetry* telemetry_ = nullptr;  ///< optional; see bind_telemetry()
};

}  // namespace hetscale::des
