// Conservative parallel execution of partitioned schedulers.
//
// The sequential Scheduler stays the unit of determinism; this layer runs
// several of them — one per OS thread — in lockstep windows. Each round:
//
//   1. barrier;
//   2. every partition drains its cross-partition inbox (the `deliver`
//      hook), which may schedule new events, then publishes the time of its
//      next pending event;
//   3. barrier; every thread folds the published times into the global
//      minimum T. If T is +infinity the simulation is quiescent and the
//      loop ends; otherwise every partition runs all events with
//      time < T + lookahead.
//
// Safety rests on the lookahead contract: any event a partition executes at
// time t can only make another partition's state change at t + lookahead or
// later (for the vmpi machine, a message departing at t arrives no earlier
// than t plus the network's per-message overhead and link latency). Events
// inside one window therefore never need to cross partitions mid-window,
// and every partition's event stream is identical to the sequential
// schedule restricted to its ranks — the windows only chunk it.
//
// Determinism: window bounds derive from the global minimum over the same
// event population regardless of how ranks are partitioned, so the window
// sequence — and with it every partition-local execution — is a pure
// function of the model, not of thread timing.
#pragma once

#include <atomic>
#include <exception>
#include <functional>
#include <vector>

#include "hetscale/des/scheduler.hpp"

namespace hetscale::des {

/// A sense-reversing spin barrier for a handful of simulation threads.
/// Windows are short (often a few hundred events), so parking threads in
/// the kernel per round would dominate; spinning with a yield fallback
/// keeps the round-trip in the microsecond range.
class SpinBarrier {
 public:
  explicit SpinBarrier(int participants) : participants_(participants) {}
  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  /// Block until all participants have arrived. Full acquire/release
  /// rendezvous: every write made before arriving is visible to every
  /// participant after it returns.
  void arrive_and_wait();

 private:
  const int participants_;
  std::atomic<int> arrived_{0};
  std::atomic<unsigned> generation_{0};
};

/// Hooks the coordinator calls on each partition's own thread.
struct PartitionHooks {
  /// Called once at thread start, before the first window: bind any
  /// thread-local state and spawn this partition's root processes (their
  /// coroutine frames then come from the partition thread's pool).
  std::function<void(int partition)> bootstrap;

  /// Called at the top of every round, after the barrier guaranteed all
  /// partitions finished the previous window: deliver inbound
  /// cross-partition work produced during it. Only this partition's own
  /// scheduler/state may be touched.
  std::function<void(int partition)> deliver;
};

/// Run `partitions` to global quiescence on one thread each, with windows
/// bounded by `lookahead_s` past the global next-event time. Returns one
/// slot per partition holding the exception that stopped it (from the
/// window loop or from Scheduler::check_roots() at quiescence), or null.
/// Any partition failure stops every partition at the next round.
std::vector<std::exception_ptr> run_conservative(
    const std::vector<Scheduler*>& partitions, double lookahead_s,
    const PartitionHooks& hooks);

}  // namespace hetscale::des
