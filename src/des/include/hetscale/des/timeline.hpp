// Timeline: a FIFO-serialized resource in virtual time.
//
// Network media (a shared Ethernet segment, a NIC injection port) can carry
// one frame at a time; a Timeline answers "if a job of length d is submitted
// at time t, when does it start and finish?" analytically, without needing a
// blocking queue of coroutines.
#pragma once

#include "hetscale/des/scheduler.hpp"

namespace hetscale::des {

class Timeline {
 public:
  /// Reserve `duration` seconds starting no earlier than `earliest`.
  /// Returns the completion time; the start is max(earliest, previous
  /// completion) — strict FIFO in submission order.
  SimTime reserve(SimTime earliest, SimTime duration);

  /// Time at which the resource next becomes free.
  SimTime free_at() const { return free_at_; }

  /// Busy time accumulated so far (for utilization reports).
  SimTime busy_time() const { return busy_time_; }

  /// Forget all reservations (e.g. between benchmark repetitions).
  void reset();

 private:
  SimTime free_at_ = 0.0;
  SimTime busy_time_ = 0.0;
};

}  // namespace hetscale::des
