// Task<T>: a lazily-started coroutine with continuation chaining.
//
// Every simulated process (an MPI rank, a collective in flight, a benchmark
// kernel) is a Task. Tasks compose: `co_await child_task()` transfers control
// into the child symmetrically and resumes the parent when the child reaches
// final suspension — all within one OS thread, so the simulation is fully
// deterministic and race-free (DESIGN.md §6.2).
#pragma once

#include <coroutine>
#include <cstddef>
#include <exception>
#include <optional>
#include <utility>

#include "hetscale/des/frame_pool.hpp"
#include "hetscale/support/error.hpp"

namespace hetscale::des {

template <class T>
class Task;

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr exception;

  // Coroutine frames come from the thread-local slab pool (frame_pool.hpp):
  // simulated operations allocate frames of a handful of sizes at a very
  // high rate, and recycling them keeps the simulation hot path free of
  // malloc traffic. Inherited by every Task promise.
  static void* operator new(std::size_t size) { return frame_alloc(size); }
  static void operator delete(void* p, std::size_t size) noexcept {
    frame_free(p, size);
  }

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <class Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> handle) noexcept {
      auto continuation = handle.promise().continuation;
      return continuation ? continuation : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };

  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { exception = std::current_exception(); }
};

}  // namespace detail

/// An owning handle to a lazily-started coroutine producing a T.
template <class T>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> value;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    template <class U>
    void return_value(U&& v) {
      value.emplace(std::forward<U>(v));
    }
  };

  Task() = default;
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return static_cast<bool>(handle_); }
  bool done() const { return handle_ && handle_.done(); }

  /// Release ownership of the raw handle (used by the scheduler for roots).
  std::coroutine_handle<promise_type> release() {
    return std::exchange(handle_, {});
  }

  // Awaitable interface: `co_await task` starts the task and resumes the
  // awaiter when the task completes, yielding its value.
  bool await_ready() const noexcept { return !handle_ || handle_.done(); }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiter) {
    handle_.promise().continuation = awaiter;
    return handle_;  // symmetric transfer into the child
  }
  T await_resume() {
    auto& promise = handle_.promise();
    if (promise.exception) std::rethrow_exception(promise.exception);
    HETSCALE_CHECK(promise.value.has_value(),
                   "awaited task finished without a value");
    return std::move(*promise.value);
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> handle) : handle_(handle) {}

  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

/// Specialization for coroutines that produce no value.
template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() noexcept {}
  };

  Task() = default;
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return static_cast<bool>(handle_); }
  bool done() const { return handle_ && handle_.done(); }

  std::coroutine_handle<promise_type> release() {
    return std::exchange(handle_, {});
  }

  bool await_ready() const noexcept { return !handle_ || handle_.done(); }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiter) {
    handle_.promise().continuation = awaiter;
    return handle_;
  }
  void await_resume() {
    auto& promise = handle_.promise();
    if (promise.exception) std::rethrow_exception(promise.exception);
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> handle) : handle_(handle) {}

  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

}  // namespace hetscale::des
