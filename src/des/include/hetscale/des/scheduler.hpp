// The discrete-event scheduler: a virtual clock plus a time-ordered queue of
// coroutine resumptions.
//
// Determinism: events at equal virtual times are executed in the order they
// were scheduled (a monotonically increasing sequence number breaks ties),
// and everything runs on the calling thread — two runs of the same model are
// bit-identical.
//
// Hot path: the next event to run is held in a dedicated front slot, so the
// ubiquitous schedule-one/pop-one rhythm of `delay(dt)` never touches the
// backing ladder queue at all; only genuinely overlapping events spill into
// LadderEventQueue (event_queue.hpp).
#pragma once

#include <coroutine>
#include <cstdint>
#include <vector>

#include "hetscale/des/event_queue.hpp"
#include "hetscale/des/task.hpp"
#include "hetscale/support/error.hpp"

namespace hetscale::des {

/// The event queue drained while a root process was still suspended — the
/// model deadlocked (e.g. a recv with no matching send). A distinct type so
/// layers above can catch it and attach model-level diagnosis (vmpi reports
/// which ranks are blocked on which mailboxes).
class DeadlockError : public ModelError {
 public:
  using ModelError::ModelError;
};

class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;
  ~Scheduler();

  /// Current virtual time.
  SimTime now() const { return now_; }

  /// Total resumption events processed so far (for tests and micro benches).
  std::uint64_t events_processed() const { return events_processed_; }

  /// Bind optional telemetry for the backing ladder queue (see
  /// des/telemetry.hpp). The front-slot fast path is not counted — it never
  /// touches the ladder; the counters cover the overlap traffic that does.
  void bind_telemetry(QueueTelemetry* telemetry) {
    queue_.bind_telemetry(telemetry);
  }

  /// High-water mark of the pending-event queue depth. Only the overlap
  /// path maintains max_queue_depth_, so a run that never held two pending
  /// events reports depth 1 (anything scheduled at all means depth >= 1).
  std::uint64_t max_queue_depth() const {
    if (max_queue_depth_ == 0 && next_sequence_ > 0) return 1;
    return max_queue_depth_;
  }

  /// Enqueue a coroutine resumption at absolute virtual time `t >= now()`.
  /// Fast path: when nothing is pending (the schedule-one/pop-one rhythm of
  /// `delay`), the event goes straight into the front slot and the ladder is
  /// never touched. Only that path is inline — folding the ladder push into
  /// every coroutine resume site bloats the actors enough to dominate the
  /// event loop, so the overlap case stays an out-of-line call.
  void schedule_at(SimTime t, std::coroutine_handle<> handle) {
    HETSCALE_REQUIRE(t >= now_, "cannot schedule an event in the virtual past");
    HETSCALE_REQUIRE(handle != nullptr, "cannot schedule a null coroutine");
    if (!front_.handle) {
      // An empty front slot implies an empty ladder (pop refills the slot
      // before draining it), so the new event is the only one pending.
      front_ = Event{t, next_sequence_++, handle};
      return;
    }
    schedule_overlapping(Event{t, next_sequence_++, handle});
  }

  /// Register `task` as a root process; it starts when run() reaches the
  /// current virtual time. Exceptions escaping a root are captured and
  /// re-thrown by run().
  void spawn(Task<void> task);

  /// Run until the event queue drains. Throws if any root process terminated
  /// with an exception (the first one, in completion order) or if any root is
  /// still suspended when the queue empties (deadlock in the model).
  void run();

  /// Conservative-parallel building block: run every pending event with
  /// time strictly before `end`, then stop (the clock stays at the last
  /// executed event, never advancing to `end` itself). Root liveness is NOT
  /// checked here — a partition legitimately idles between windows while
  /// its ranks wait on cross-partition messages; call check_roots() once
  /// the coordinator decides the whole simulation is quiescent.
  void run_window(SimTime end);

  /// Virtual time of the next pending event, or +infinity when the queue is
  /// empty. The coordinator folds these across partitions to pick the next
  /// safe window bound.
  SimTime next_event_time() const;

  /// The termination checks factored out of run(): throws DeadlockError if
  /// any root is still suspended, and rethrows the first captured root
  /// exception (in spawn order) otherwise.
  void check_roots();

  /// Awaitable: suspend for `dt >= 0` seconds of virtual time.
  auto delay(SimTime dt) {
    HETSCALE_REQUIRE(dt >= 0.0, "delay must be non-negative");
    return ResumeAtAwaiter{*this, now_ + dt};
  }

  /// Awaitable: suspend until absolute virtual time `t >= now()`.
  auto resume_at(SimTime t) {
    HETSCALE_REQUIRE(t >= now_, "cannot resume in the virtual past");
    return ResumeAtAwaiter{*this, t};
  }

 private:
  struct ResumeAtAwaiter {
    Scheduler& scheduler;
    SimTime at;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> handle) {
      scheduler.schedule_at(at, handle);
    }
    void await_resume() const noexcept {}
  };

  using RootHandle = std::coroutine_handle<Task<void>::promise_type>;

  /// Slow path of schedule_at: an event arrives while another is pending.
  void schedule_overlapping(const Event& event);

  SimTime now_ = 0.0;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t events_processed_ = 0;
  std::uint64_t max_queue_depth_ = 0;
  Event front_{};           ///< next event to run; empty iff handle is null
  LadderEventQueue queue_;  ///< everything behind the front slot
  std::vector<RootHandle> roots_;
};

}  // namespace hetscale::des
