// The discrete-event scheduler: a virtual clock plus a time-ordered queue of
// coroutine resumptions.
//
// Determinism: events at equal virtual times are executed in the order they
// were scheduled (a monotonically increasing sequence number breaks ties),
// and everything runs on the calling thread — two runs of the same model are
// bit-identical.
#pragma once

#include <coroutine>
#include <cstdint>
#include <queue>
#include <vector>

#include "hetscale/des/task.hpp"
#include "hetscale/support/error.hpp"

namespace hetscale::des {

/// Virtual time, in seconds.
using SimTime = double;

/// The event queue drained while a root process was still suspended — the
/// model deadlocked (e.g. a recv with no matching send). A distinct type so
/// layers above can catch it and attach model-level diagnosis (vmpi reports
/// which ranks are blocked on which mailboxes).
class DeadlockError : public ModelError {
 public:
  using ModelError::ModelError;
};

class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;
  ~Scheduler();

  /// Current virtual time.
  SimTime now() const { return now_; }

  /// Total resumption events processed so far (for tests and micro benches).
  std::uint64_t events_processed() const { return events_processed_; }

  /// High-water mark of the pending-event queue depth.
  std::uint64_t max_queue_depth() const { return max_queue_depth_; }

  /// Enqueue a coroutine resumption at absolute virtual time `t >= now()`.
  void schedule_at(SimTime t, std::coroutine_handle<> handle);

  /// Register `task` as a root process; it starts when run() reaches the
  /// current virtual time. Exceptions escaping a root are captured and
  /// re-thrown by run().
  void spawn(Task<void> task);

  /// Run until the event queue drains. Throws if any root process terminated
  /// with an exception (the first one, in completion order) or if any root is
  /// still suspended when the queue empties (deadlock in the model).
  void run();

  /// Awaitable: suspend for `dt >= 0` seconds of virtual time.
  auto delay(SimTime dt) {
    HETSCALE_REQUIRE(dt >= 0.0, "delay must be non-negative");
    return ResumeAtAwaiter{*this, now_ + dt};
  }

  /// Awaitable: suspend until absolute virtual time `t >= now()`.
  auto resume_at(SimTime t) {
    HETSCALE_REQUIRE(t >= now_, "cannot resume in the virtual past");
    return ResumeAtAwaiter{*this, t};
  }

 private:
  struct ResumeAtAwaiter {
    Scheduler& scheduler;
    SimTime at;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> handle) {
      scheduler.schedule_at(at, handle);
    }
    void await_resume() const noexcept {}
  };

  struct Event {
    SimTime time;
    std::uint64_t sequence;
    std::coroutine_handle<> handle;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.sequence > b.sequence;
    }
  };

  using RootHandle = std::coroutine_handle<Task<void>::promise_type>;

  SimTime now_ = 0.0;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t events_processed_ = 0;
  std::uint64_t max_queue_depth_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  std::vector<RootHandle> roots_;
};

}  // namespace hetscale::des
