// A slab recycler for coroutine frames.
//
// Every simulated operation (a send, a recv, a collective step) is a Task
// coroutine, so the simulator's allocation rate is dominated by frame
// new/delete pairs of a handful of distinct sizes. Frames are recycled
// through thread-local size-binned freelists: a simulation runs entirely on
// one thread (the Runner gives each concurrent simulation its own worker), so
// no locks are needed and a frame always returns to the freelist it came
// from.
//
// Under AddressSanitizer the recycled blocks are poisoned while parked, so
// use-after-free of a completed coroutine frame still traps.
#pragma once

#include <cstddef>

namespace hetscale::des::detail {

/// Allocate storage for a coroutine frame of `size` bytes.
void* frame_alloc(std::size_t size);

/// Return a frame to the pool (sizes above the pooled range go straight back
/// to the heap).
void frame_free(void* p, std::size_t size) noexcept;

/// Statistics for benchmarks: frames currently parked on this thread's
/// freelists.
std::size_t frame_pool_parked();

/// Frames currently allocated (not yet freed) on this thread — one per
/// suspended coroutine, roughly.
std::size_t frame_pool_live();

/// High-water mark of frame_pool_live() since the last reset. Machine::run
/// resets it at launch so a profiled run reports its own peak.
std::size_t frame_pool_live_peak();

/// Restart the high-water mark at the current live count.
void frame_pool_reset_live_peak();

}  // namespace hetscale::des::detail
