#include "hetscale/des/parallel.hpp"

#include <algorithm>
#include <limits>
#include <thread>

#include "hetscale/support/error.hpp"

namespace hetscale::des {

void SpinBarrier::arrive_and_wait() {
  const unsigned generation = generation_.load(std::memory_order_relaxed);
  if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == participants_) {
    // Last arriver: reset the count for the next round, then release the
    // generation. The reset is safe — every participant incremented before
    // this point, and none can re-arrive until it observes the new
    // generation (which is published after the reset).
    arrived_.store(0, std::memory_order_relaxed);
    generation_.store(generation + 1, std::memory_order_release);
    return;
  }
  int spins = 0;
  while (generation_.load(std::memory_order_acquire) == generation) {
    if (++spins >= 1024) {
      std::this_thread::yield();
      spins = 0;
    }
  }
}

std::vector<std::exception_ptr> run_conservative(
    const std::vector<Scheduler*>& partitions, double lookahead_s,
    const PartitionHooks& hooks) {
  const int count = static_cast<int>(partitions.size());
  HETSCALE_REQUIRE(count >= 1, "need at least one partition");
  HETSCALE_REQUIRE(lookahead_s > 0.0,
                   "conservative windows need a positive lookahead");

  constexpr SimTime kIdle = std::numeric_limits<SimTime>::infinity();
  SpinBarrier barrier(count);
  std::vector<SimTime> next_time(partitions.size(), 0.0);
  std::vector<std::exception_ptr> errors(partitions.size());
  std::atomic<bool> failed{false};

  const auto partition_loop = [&](int p) {
    Scheduler& scheduler = *partitions[static_cast<std::size_t>(p)];
    std::exception_ptr& error = errors[static_cast<std::size_t>(p)];
    // A failed segment must not unwind past a barrier — the two-barrier
    // round would desynchronize and strand the other threads — so every
    // segment traps locally. A failed partition keeps the rendezvous
    // rhythm, publishing "idle" until the round where everyone observes
    // the failure flag and exits together.
    const auto guarded = [&](const auto& segment) {
      if (error) return;
      try {
        segment();
      } catch (...) {
        error = std::current_exception();
        failed.store(true, std::memory_order_release);
      }
    };

    guarded([&] {
      if (hooks.bootstrap) hooks.bootstrap(p);
    });
    for (;;) {
      // Top of the round: all partitions have finished the previous window
      // (or just bootstrapped) — cross-partition handoffs are complete and
      // safe to deliver. The failure check sits here so every thread exits
      // at the same rendezvous.
      barrier.arrive_and_wait();
      if (failed.load(std::memory_order_acquire)) break;
      guarded([&] {
        if (hooks.deliver) hooks.deliver(p);
      });
      next_time[static_cast<std::size_t>(p)] =
          error ? kIdle : scheduler.next_event_time();
      barrier.arrive_and_wait();
      // Every thread folds the same published times, so all agree on the
      // window bound (and on quiescence) without a leader.
      SimTime horizon = kIdle;
      for (const SimTime t : next_time) horizon = std::min(horizon, t);
      if (horizon == kIdle) break;
      guarded([&] { scheduler.run_window(horizon + lookahead_s); });
    }
    // Per-partition liveness/exception check, even after a failure
    // elsewhere: the caller prefers real exceptions over the secondary
    // deadlocks an aborted run leaves behind, and checking unconditionally
    // keeps the recorded error set deterministic.
    guarded([&] { scheduler.check_roots(); });
  };

  std::vector<std::thread> threads;
  threads.reserve(partitions.size());
  for (int p = 0; p < count; ++p) {
    threads.emplace_back(partition_loop, p);
  }
  for (std::thread& thread : threads) thread.join();
  return errors;
}

}  // namespace hetscale::des
