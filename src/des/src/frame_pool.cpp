#include "hetscale/des/frame_pool.hpp"

#include <new>

#if defined(__SANITIZE_ADDRESS__)
#define HETSCALE_FRAME_POOL_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define HETSCALE_FRAME_POOL_ASAN 1
#endif
#endif

#ifdef HETSCALE_FRAME_POOL_ASAN
#include <sanitizer/asan_interface.h>
#define HETSCALE_POISON(p, s) ASAN_POISON_MEMORY_REGION((p), (s))
#define HETSCALE_UNPOISON(p, s) ASAN_UNPOISON_MEMORY_REGION((p), (s))
#else
#define HETSCALE_POISON(p, s) ((void)0)
#define HETSCALE_UNPOISON(p, s) ((void)0)
#endif

namespace hetscale::des::detail {

namespace {

// Frames are rounded up to 64-byte slots; one freelist per slot count.
// Anything larger than 2 KiB (rare: deeply-inlined collectives) bypasses the
// pool. Bins are capped so a pathological burst cannot pin memory forever.
constexpr std::size_t kGranularity = 64;
constexpr std::size_t kBins = 32;
constexpr std::size_t kMaxPooledBytes = kGranularity * kBins;
constexpr std::size_t kMaxParkedPerBin = 1024;

struct FreeNode {
  FreeNode* next;
};

struct Bin {
  FreeNode* head = nullptr;
  std::size_t count = 0;
};

struct Pool {
  Bin bins[kBins];

  ~Pool() {
    for (Bin& bin : bins) {
      FreeNode* node = bin.head;
      while (node != nullptr) {
        HETSCALE_UNPOISON(node, sizeof(FreeNode));
        FreeNode* next = node->next;
        ::operator delete(node);
        node = next;
      }
      bin.head = nullptr;
      bin.count = 0;
    }
  }
};

thread_local Pool t_pool;

// Live-frame gauge: frames allocated and not yet freed on this thread. The
// high-water mark is what large-p memory regressions show up in — every
// concurrently-suspended actor coroutine holds at least one live frame.
thread_local std::size_t t_live = 0;
thread_local std::size_t t_live_peak = 0;

inline std::size_t bin_index(std::size_t size) {
  return (size - 1) / kGranularity;
}

}  // namespace

void* frame_alloc(std::size_t size) {
  if (size == 0) size = 1;
  if (++t_live > t_live_peak) t_live_peak = t_live;
  if (size > kMaxPooledBytes) return ::operator new(size);
  Bin& bin = t_pool.bins[bin_index(size)];
  if (bin.head != nullptr) {
    FreeNode* node = bin.head;
    HETSCALE_UNPOISON(node, (bin_index(size) + 1) * kGranularity);
    bin.head = node->next;
    --bin.count;
    return node;
  }
  // Allocate the full slot so any frame of this bin can reuse it.
  return ::operator new((bin_index(size) + 1) * kGranularity);
}

void frame_free(void* p, std::size_t size) noexcept {
  if (p == nullptr) return;
  if (t_live > 0) --t_live;
  if (size == 0) size = 1;
  if (size > kMaxPooledBytes) {
    ::operator delete(p);
    return;
  }
  Bin& bin = t_pool.bins[bin_index(size)];
  if (bin.count >= kMaxParkedPerBin) {
    ::operator delete(p);
    return;
  }
  auto* node = static_cast<FreeNode*>(p);
  node->next = bin.head;
  bin.head = node;
  ++bin.count;
  HETSCALE_POISON(node, (bin_index(size) + 1) * kGranularity);
}

std::size_t frame_pool_parked() {
  std::size_t total = 0;
  for (const Bin& bin : t_pool.bins) total += bin.count;
  return total;
}

std::size_t frame_pool_live() { return t_live; }

std::size_t frame_pool_live_peak() { return t_live_peak; }

void frame_pool_reset_live_peak() { t_live_peak = t_live; }

}  // namespace hetscale::des::detail
