#include "hetscale/des/event_queue.hpp"

namespace hetscale::des {

void LadderEventQueue::rebuild() {
  HETSCALE_DCHECK(ladder_count_ == 0 && !far_.empty(),
                  "rebuild needs a drained ladder and pending far events");
  // The drain clears a bucket only when it advances past it, so the bucket
  // the previous epoch stopped in still holds its popped prefix — drop it
  // before re-bucketing or those events would be popped twice.
  buckets_[cur_].clear();
  SimTime lo = far_.front().time;
  SimTime hi = lo;
  for (const Event& e : far_) {
    if (e.time < lo) lo = e.time;
    if (e.time > hi) hi = e.time;
  }
  // Adapt the bucket width to the observed span, then extend the epoch to
  // twice that span. The extension is what makes the steady state cheap: in
  // the dominant rotating rhythm (pop the minimum, reschedule it one period
  // ahead) the re-push lands just past the current maximum, so an epoch that
  // ended exactly at `hi` would shunt every re-push to the far list and pay
  // a full rebuild + sort per revolution. With headroom the wheel rotates in
  // place — pushes drop into later buckets a couple of events deep, and each
  // bucket is sorted once, when the drain reaches it. A degenerate span (all
  // events at one instant) gets an arbitrary positive width — everything
  // lands in bucket 0 and the epoch behaves like a single sorted run.
  if (telemetry_ != nullptr) {
    ++telemetry_->rebuilds;
    // The rebuild instant is the one point where the whole pending
    // population is in hand; count_ was already decremented for the pop in
    // flight, so +1 restores the true depth.
    if (telemetry_->occupancy.size() < QueueTelemetry::kMaxSamples) {
      telemetry_->occupancy.push_back(QueueTelemetry::Sample{lo, count_ + 1});
    } else {
      ++telemetry_->samples_dropped;
    }
  }
  double width = 2.0 * (hi - lo) / static_cast<double>(kBuckets);
  if (!(width > 0.0)) width = 1.0;
  epoch_start_ = lo;
  epoch_end_ = lo + width * static_cast<double>(kBuckets);
  inv_width_ = 1.0 / width;
  for (const Event& e : far_) {
    std::size_t idx =
        static_cast<std::size_t>((e.time - epoch_start_) * inv_width_);
    if (idx >= kBuckets) idx = kBuckets - 1;
    buckets_[idx].push_back(e);
  }
  ladder_count_ = far_.size();
  far_.clear();  // keeps capacity — the far slab is reused
  cur_ = 0;
  sort_bucket(buckets_[0]);
  drain_pos_ = buckets_[0].data();
  drain_end_ = buckets_[0].data() + buckets_[0].size();
}

}  // namespace hetscale::des
