#include "hetscale/des/timeline.hpp"

#include <algorithm>

#include "hetscale/support/error.hpp"

namespace hetscale::des {

SimTime Timeline::reserve(SimTime earliest, SimTime duration) {
  HETSCALE_REQUIRE(duration >= 0.0, "reservation duration must be >= 0");
  HETSCALE_REQUIRE(earliest >= 0.0, "reservation time must be >= 0");
  const SimTime start = std::max(earliest, free_at_);
  free_at_ = start + duration;
  busy_time_ += duration;
  return free_at_;
}

void Timeline::reset() {
  free_at_ = 0.0;
  busy_time_ = 0.0;
}

}  // namespace hetscale::des
