#include "hetscale/des/scheduler.hpp"

#include <algorithm>

namespace hetscale::des {

Scheduler::~Scheduler() {
  for (auto handle : roots_) {
    if (handle) handle.destroy();
  }
}

void Scheduler::schedule_at(SimTime t, std::coroutine_handle<> handle) {
  HETSCALE_REQUIRE(t >= now_, "cannot schedule an event in the virtual past");
  HETSCALE_REQUIRE(handle != nullptr, "cannot schedule a null coroutine");
  queue_.push(Event{t, next_sequence_++, handle});
  max_queue_depth_ = std::max<std::uint64_t>(max_queue_depth_, queue_.size());
}

void Scheduler::spawn(Task<void> task) {
  HETSCALE_REQUIRE(task.valid(), "cannot spawn an empty task");
  auto handle = task.release();  // scheduler takes ownership of the frame
  roots_.push_back(handle);
  schedule_at(now_, handle);
}

void Scheduler::run() {
  while (!queue_.empty()) {
    Event event = queue_.top();
    queue_.pop();
    HETSCALE_CHECK(event.time >= now_, "event queue went back in time");
    now_ = event.time;
    ++events_processed_;
    event.handle.resume();
  }
  // Surface failures and deadlocks from root processes.
  for (auto handle : roots_) {
    if (!handle) continue;
    if (!handle.done()) {
      throw DeadlockError(
          "simulation deadlock: a root process is still blocked after the "
          "event queue drained (e.g. a recv with no matching send)");
    }
    if (handle.promise().exception) {
      std::rethrow_exception(handle.promise().exception);
    }
  }
}

}  // namespace hetscale::des
