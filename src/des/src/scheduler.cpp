#include "hetscale/des/scheduler.hpp"

#include <limits>

namespace hetscale::des {

Scheduler::~Scheduler() {
  for (auto handle : roots_) {
    if (handle) handle.destroy();
  }
}

void Scheduler::schedule_overlapping(const Event& event) {
  if (event_before(event, front_)) {
    queue_.push(front_);
    front_ = event;
  } else {
    queue_.push(event);
  }
  const std::uint64_t depth = queue_.size() + 1;  // + the front slot
  if (depth > max_queue_depth_) max_queue_depth_ = depth;
}

void Scheduler::spawn(Task<void> task) {
  HETSCALE_REQUIRE(task.valid(), "cannot spawn an empty task");
  auto handle = task.release();  // scheduler takes ownership of the frame
  roots_.push_back(handle);
  schedule_at(now_, handle);
}

void Scheduler::run() {
  while (front_.handle) {
    // Advance the clock and lift the handle out of the front slot, then
    // refill the slot from the ladder before resuming — the resumed
    // coroutine usually schedules its next hop straight back into the (now
    // possibly empty) front slot.
    HETSCALE_DCHECK(front_.time >= now_, "event queue went back in time");
    now_ = front_.time;
    ++events_processed_;
    const std::coroutine_handle<> handle = front_.handle;
    if (queue_.empty()) {
      front_.handle = nullptr;
    } else {
      front_ = queue_.pop_min();
    }
    handle.resume();
  }
  check_roots();
}

void Scheduler::run_window(SimTime end) {
  // Same loop as run(), bounded strictly below `end`: events exactly at the
  // window edge belong to the next window (the coordinator's lower bound is
  // inclusive, so the upper bound must be exclusive to partition the event
  // timeline without overlap).
  while (front_.handle && front_.time < end) {
    HETSCALE_DCHECK(front_.time >= now_, "event queue went back in time");
    now_ = front_.time;
    ++events_processed_;
    const std::coroutine_handle<> handle = front_.handle;
    if (queue_.empty()) {
      front_.handle = nullptr;
    } else {
      front_ = queue_.pop_min();
    }
    handle.resume();
  }
}

SimTime Scheduler::next_event_time() const {
  return front_.handle ? front_.time
                       : std::numeric_limits<SimTime>::infinity();
}

void Scheduler::check_roots() {
  // Surface failures and deadlocks from root processes.
  for (auto handle : roots_) {
    if (!handle) continue;
    if (!handle.done()) {
      throw DeadlockError(
          "simulation deadlock: a root process is still blocked after the "
          "event queue drained (e.g. a recv with no matching send)");
    }
    if (handle.promise().exception) {
      std::rethrow_exception(handle.promise().exception);
    }
  }
}

}  // namespace hetscale::des
