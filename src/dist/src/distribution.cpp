#include "hetscale/dist/distribution.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "hetscale/dist/grid.hpp"
#include "hetscale/support/error.hpp"

namespace hetscale::dist {

namespace {
double total_speed(std::span<const double> speeds) {
  HETSCALE_REQUIRE(!speeds.empty(), "need at least one processor");
  double total = 0.0;
  for (double s : speeds) {
    HETSCALE_REQUIRE(s > 0.0, "processor speeds must be positive");
    total += s;
  }
  return total;
}
}  // namespace

std::vector<std::int64_t> het_block_counts(std::span<const double> speeds,
                                           std::int64_t n) {
  HETSCALE_REQUIRE(n >= 0, "item count must be non-negative");
  const double c = total_speed(speeds);
  const std::size_t p = speeds.size();

  std::vector<std::int64_t> counts(p, 0);
  std::vector<std::pair<double, std::size_t>> remainders(p);
  std::int64_t assigned = 0;
  for (std::size_t i = 0; i < p; ++i) {
    const double ideal = static_cast<double>(n) * speeds[i] / c;
    counts[i] = static_cast<std::int64_t>(std::floor(ideal));
    assigned += counts[i];
    remainders[i] = {ideal - std::floor(ideal), i};
  }
  // Largest remainder first; ties to the lower rank for determinism.
  std::stable_sort(remainders.begin(), remainders.end(),
                   [](const auto& a, const auto& b) {
                     if (a.first != b.first) return a.first > b.first;
                     return a.second < b.second;
                   });
  for (std::int64_t leftover = n - assigned; leftover > 0; --leftover) {
    ++counts[remainders[static_cast<std::size_t>(n - assigned - leftover)]
                 .second];
  }
  return counts;
}

std::vector<std::int64_t> block_offsets(
    std::span<const std::int64_t> counts) {
  std::vector<std::int64_t> offsets(counts.size() + 1, 0);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    HETSCALE_REQUIRE(counts[i] >= 0, "counts must be non-negative");
    offsets[i + 1] = offsets[i] + counts[i];
  }
  return offsets;
}

std::vector<int> het_cyclic_owners(std::span<const double> speeds,
                                   std::int64_t n) {
  HETSCALE_REQUIRE(n >= 0, "item count must be non-negative");
  total_speed(speeds);  // validates
  const std::size_t p = speeds.size();

  // Deal each item to the processor whose (assigned + 1) / speed is
  // smallest — i.e. the one that stays furthest below its proportional
  // share. Ties go to the lower rank.
  std::vector<int> owners(static_cast<std::size_t>(n), 0);
  std::vector<std::int64_t> assigned(p, 0);
  for (std::int64_t j = 0; j < n; ++j) {
    std::size_t best = 0;
    double best_key = (static_cast<double>(assigned[0]) + 1.0) / speeds[0];
    for (std::size_t i = 1; i < p; ++i) {
      const double key = (static_cast<double>(assigned[i]) + 1.0) / speeds[i];
      if (key < best_key) {
        best = i;
        best_key = key;
      }
    }
    owners[static_cast<std::size_t>(j)] = static_cast<int>(best);
    ++assigned[best];
  }
  return owners;
}

std::vector<int> het_block_cyclic_owners(std::span<const double> speeds,
                                         std::int64_t n,
                                         std::int64_t round_size) {
  HETSCALE_REQUIRE(round_size >= 1, "round size must be >= 1");
  const auto pattern = het_cyclic_owners(speeds, round_size);
  std::vector<int> owners(
      static_cast<std::size_t>(std::max<std::int64_t>(n, 0)));
  for (std::int64_t j = 0; j < n; ++j) {
    owners[static_cast<std::size_t>(j)] =
        pattern[static_cast<std::size_t>(j % round_size)];
  }
  return owners;
}

std::vector<std::int64_t> block_counts(int p, std::int64_t n) {
  HETSCALE_REQUIRE(p >= 1, "need at least one processor");
  std::vector<double> speeds(static_cast<std::size_t>(p), 1.0);
  return het_block_counts(speeds, n);
}

std::vector<int> cyclic_owners(int p, std::int64_t n,
                               std::int64_t block_size) {
  HETSCALE_REQUIRE(p >= 1, "need at least one processor");
  HETSCALE_REQUIRE(block_size >= 1, "block size must be >= 1");
  // Thin wrapper over the 2D layer: a p x 1 grid tiled in blocks of
  // block_size rows reproduces owner[j] = (j / block_size) mod p exactly.
  const std::int64_t count = std::max<std::int64_t>(n, 0);
  const TileMap map(ProcessGrid::rows_only(p), count, 1, block_size, 1);
  std::vector<int> owners(static_cast<std::size_t>(count));
  for (std::int64_t j = 0; j < count; ++j) {
    owners[static_cast<std::size_t>(j)] = map.owner_of_index(j, 0);
  }
  return owners;
}

std::vector<std::int64_t> column_tiling_counts(std::span<const double> speeds,
                                               std::int64_t n) {
  return het_block_counts(speeds, n);
}

double imbalance(std::span<const double> speeds,
                 std::span<const std::int64_t> counts) {
  HETSCALE_REQUIRE(speeds.size() == counts.size(),
                   "speeds/counts length mismatch");
  const double c = total_speed(speeds);
  std::int64_t n = 0;
  for (auto k : counts) n += k;
  if (n == 0) return 1.0;
  double worst = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    worst = std::max(worst, static_cast<double>(counts[i]) / speeds[i]);
  }
  return worst * c / static_cast<double>(n);
}

std::vector<std::int64_t> counts_from_owners(std::span<const int> owners,
                                             std::size_t p) {
  std::vector<std::int64_t> counts(p, 0);
  for (int owner : owners) {
    HETSCALE_REQUIRE(owner >= 0 && static_cast<std::size_t>(owner) < p,
                     "owner index out of range");
    ++counts[static_cast<std::size_t>(owner)];
  }
  return counts;
}

}  // namespace hetscale::dist
