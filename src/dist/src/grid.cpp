#include "hetscale/dist/grid.hpp"

#include <algorithm>
#include <numeric>

#include "hetscale/support/error.hpp"

namespace hetscale::dist {

namespace {
int squarest_rows(int p) {
  int best = 1;
  for (int r = 1; r * r <= p; ++r) {
    if (p % r == 0) best = r;
  }
  return best;
}
}  // namespace

ProcessGrid::ProcessGrid(int rows, int cols, std::vector<int> slot_rank)
    : rows_(rows), cols_(cols), slot_rank_(std::move(slot_rank)) {
  const int p = rows_ * cols_;
  row_of_.assign(static_cast<std::size_t>(p), -1);
  col_of_.assign(static_cast<std::size_t>(p), -1);
  for (int gr = 0; gr < rows_; ++gr) {
    for (int gc = 0; gc < cols_; ++gc) {
      const int rank = slot_rank_[static_cast<std::size_t>(gr * cols_ + gc)];
      HETSCALE_REQUIRE(rank >= 0 && rank < p, "grid slot rank out of range");
      HETSCALE_REQUIRE(row_of_[static_cast<std::size_t>(rank)] == -1,
                       "rank placed on two grid slots");
      row_of_[static_cast<std::size_t>(rank)] = gr;
      col_of_[static_cast<std::size_t>(rank)] = gc;
    }
  }
}

ProcessGrid ProcessGrid::squarest(int p) {
  HETSCALE_REQUIRE(p >= 1, "need at least one rank");
  const int r = squarest_rows(p);
  std::vector<int> slots(static_cast<std::size_t>(p));
  std::iota(slots.begin(), slots.end(), 0);
  return ProcessGrid(r, p / r, std::move(slots));
}

ProcessGrid ProcessGrid::rows_only(int p) {
  HETSCALE_REQUIRE(p >= 1, "need at least one rank");
  std::vector<int> slots(static_cast<std::size_t>(p));
  std::iota(slots.begin(), slots.end(), 0);
  return ProcessGrid(p, 1, std::move(slots));
}

ProcessGrid ProcessGrid::speed_balanced(std::span<const double> speeds) {
  const int p = static_cast<int>(speeds.size());
  HETSCALE_REQUIRE(p >= 1, "need at least one rank");
  for (double s : speeds) {
    HETSCALE_REQUIRE(s > 0.0, "processor speeds must be positive");
  }
  const int r = squarest_rows(p);
  const int c = p / r;

  // Fastest-first LPT deal onto grid rows: each rank joins the row with the
  // least aggregate speed that still has a free slot.
  std::vector<int> order(static_cast<std::size_t>(p));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    if (speeds[static_cast<std::size_t>(a)] !=
        speeds[static_cast<std::size_t>(b)]) {
      return speeds[static_cast<std::size_t>(a)] >
             speeds[static_cast<std::size_t>(b)];
    }
    return a < b;
  });
  std::vector<std::vector<int>> row_ranks(static_cast<std::size_t>(r));
  std::vector<double> row_speed(static_cast<std::size_t>(r), 0.0);
  for (int rank : order) {
    int best = -1;
    for (int gr = 0; gr < r; ++gr) {
      if (static_cast<int>(row_ranks[static_cast<std::size_t>(gr)].size()) ==
          c) {
        continue;
      }
      if (best == -1 || row_speed[static_cast<std::size_t>(gr)] <
                            row_speed[static_cast<std::size_t>(best)]) {
        best = gr;
      }
    }
    row_ranks[static_cast<std::size_t>(best)].push_back(rank);
    row_speed[static_cast<std::size_t>(best)] +=
        speeds[static_cast<std::size_t>(rank)];
  }

  // Within each row (members are already fastest-first), deal onto the
  // column with the least aggregate speed so far.
  std::vector<int> slots(static_cast<std::size_t>(p), -1);
  std::vector<double> col_speed(static_cast<std::size_t>(c), 0.0);
  for (int gr = 0; gr < r; ++gr) {
    std::vector<bool> used(static_cast<std::size_t>(c), false);
    for (int rank : row_ranks[static_cast<std::size_t>(gr)]) {
      int best = -1;
      for (int gc = 0; gc < c; ++gc) {
        if (used[static_cast<std::size_t>(gc)]) continue;
        if (best == -1 || col_speed[static_cast<std::size_t>(gc)] <
                              col_speed[static_cast<std::size_t>(best)]) {
          best = gc;
        }
      }
      used[static_cast<std::size_t>(best)] = true;
      col_speed[static_cast<std::size_t>(best)] +=
          speeds[static_cast<std::size_t>(rank)];
      slots[static_cast<std::size_t>(gr * c + best)] = rank;
    }
  }
  return ProcessGrid(r, c, std::move(slots));
}

int ProcessGrid::rank_at(int grid_row, int grid_col) const {
  HETSCALE_REQUIRE(grid_row >= 0 && grid_row < rows_, "grid row out of range");
  HETSCALE_REQUIRE(grid_col >= 0 && grid_col < cols_, "grid col out of range");
  return slot_rank_[static_cast<std::size_t>(grid_row * cols_ + grid_col)];
}

int ProcessGrid::row_of(int rank) const {
  HETSCALE_REQUIRE(rank >= 0 && rank < size(), "rank out of range");
  return row_of_[static_cast<std::size_t>(rank)];
}

int ProcessGrid::col_of(int rank) const {
  HETSCALE_REQUIRE(rank >= 0 && rank < size(), "rank out of range");
  return col_of_[static_cast<std::size_t>(rank)];
}

std::vector<int> ProcessGrid::row_members(int grid_row) const {
  std::vector<int> members(static_cast<std::size_t>(cols_));
  for (int gc = 0; gc < cols_; ++gc) {
    members[static_cast<std::size_t>(gc)] = rank_at(grid_row, gc);
  }
  return members;
}

std::vector<int> ProcessGrid::col_members(int grid_col) const {
  std::vector<int> members(static_cast<std::size_t>(rows_));
  for (int gr = 0; gr < rows_; ++gr) {
    members[static_cast<std::size_t>(gr)] = rank_at(gr, grid_col);
  }
  return members;
}

TileMap::TileMap(ProcessGrid grid, std::int64_t rows, std::int64_t cols,
                 std::int64_t tile_rows, std::int64_t tile_cols)
    : grid_(std::move(grid)),
      rows_(rows),
      cols_(cols),
      tile_rows_(tile_rows),
      tile_cols_(tile_cols) {
  HETSCALE_REQUIRE(rows_ >= 0 && cols_ >= 0,
                   "index space must be non-negative");
  HETSCALE_REQUIRE(tile_rows_ >= 1 && tile_cols_ >= 1,
                   "tile extent must be >= 1");
  tile_row_count_ = (rows_ + tile_rows_ - 1) / tile_rows_;
  tile_col_count_ = (cols_ + tile_cols_ - 1) / tile_cols_;
}

Tile TileMap::tile(std::int64_t ti, std::int64_t tj) const {
  HETSCALE_REQUIRE(ti >= 0 && ti < tile_row_count_, "tile row out of range");
  HETSCALE_REQUIRE(tj >= 0 && tj < tile_col_count_, "tile col out of range");
  Tile t;
  t.tile_row = ti;
  t.tile_col = tj;
  t.row0 = ti * tile_rows_;
  t.col0 = tj * tile_cols_;
  t.rows = std::min(tile_rows_, rows_ - t.row0);
  t.cols = std::min(tile_cols_, cols_ - t.col0);
  t.owner = owner(ti, tj);
  return t;
}

int TileMap::owner(std::int64_t ti, std::int64_t tj) const {
  return grid_.rank_at(static_cast<int>(ti % grid_.rows()),
                       static_cast<int>(tj % grid_.cols()));
}

int TileMap::owner_of_index(std::int64_t gi, std::int64_t gj) const {
  HETSCALE_REQUIRE(gi >= 0 && gi < rows_, "global row out of range");
  HETSCALE_REQUIRE(gj >= 0 && gj < cols_, "global col out of range");
  return owner(gi / tile_rows_, gj / tile_cols_);
}

TileMap::Local TileMap::to_local(std::int64_t gi, std::int64_t gj) const {
  HETSCALE_REQUIRE(gi >= 0 && gi < rows_, "global row out of range");
  HETSCALE_REQUIRE(gj >= 0 && gj < cols_, "global col out of range");
  Local local;
  local.tile_row = gi / tile_rows_;
  local.tile_col = gj / tile_cols_;
  local.row = gi % tile_rows_;
  local.col = gj % tile_cols_;
  return local;
}

std::pair<std::int64_t, std::int64_t> TileMap::to_global(
    const Local& local) const {
  const std::int64_t gi = local.tile_row * tile_rows_ + local.row;
  const std::int64_t gj = local.tile_col * tile_cols_ + local.col;
  HETSCALE_REQUIRE(local.row >= 0 && local.row < tile_rows_ &&
                       local.col >= 0 && local.col < tile_cols_,
                   "tile-relative offset out of range");
  HETSCALE_REQUIRE(gi < rows_ && gj < cols_, "local address beyond the map");
  return {gi, gj};
}

std::vector<Tile> TileMap::tiles_of(int rank) const {
  std::vector<Tile> mine;
  const int gr = grid_.row_of(rank);
  const int gc = grid_.col_of(rank);
  for (std::int64_t ti = gr; ti < tile_row_count_; ti += grid_.rows()) {
    for (std::int64_t tj = gc; tj < tile_col_count_; tj += grid_.cols()) {
      mine.push_back(tile(ti, tj));
    }
  }
  return mine;
}

std::vector<std::int64_t> TileMap::element_counts() const {
  std::vector<std::int64_t> counts(static_cast<std::size_t>(grid_.size()), 0);
  for (std::int64_t ti = 0; ti < tile_row_count_; ++ti) {
    for (std::int64_t tj = 0; tj < tile_col_count_; ++tj) {
      const Tile t = tile(ti, tj);
      counts[static_cast<std::size_t>(t.owner)] += t.elements();
    }
  }
  return counts;
}

std::vector<Tile> row_panel(const TileMap& map, std::int64_t tile_row) {
  std::vector<Tile> tiles;
  tiles.reserve(static_cast<std::size_t>(map.tile_col_count()));
  for (std::int64_t tj = 0; tj < map.tile_col_count(); ++tj) {
    tiles.push_back(map.tile(tile_row, tj));
  }
  return tiles;
}

std::vector<Tile> col_panel(const TileMap& map, std::int64_t tile_col) {
  std::vector<Tile> tiles;
  tiles.reserve(static_cast<std::size_t>(map.tile_row_count()));
  for (std::int64_t ti = 0; ti < map.tile_row_count(); ++ti) {
    tiles.push_back(map.tile(ti, tile_col));
  }
  return tiles;
}

double panel_bytes(std::span<const Tile> tiles) {
  double elements = 0.0;
  for (const Tile& t : tiles) elements += static_cast<double>(t.elements());
  return 8.0 * elements;
}

}  // namespace hetscale::dist
