// 2D process grids and block-cyclic tile maps.
//
// The paper's algorithms use 1D row distributions (distribution.hpp), but
// the isospeed metric is defined for *any* combination under *any* load
// split. This layer generalizes the distribution vocabulary to two
// dimensions, distributed-ranges style:
//
//   ProcessGrid  p ranks factored into an r x c grid. The speed-balanced
//                factory places ranks so each grid row's and column's
//                aggregate marked speed is as even as the shape allows —
//                SUMMA's row/column broadcasts then carry balanced panels.
//   TileMap      block-cyclic 2D tiling: tile (ti, tj) lives on the grid
//                slot (ti mod r, tj mod c). Provides per-tile owners,
//                local <-> global index math, and per-owner tile lists.
//
// The existing 1D entry points stay as thin wrappers: cyclic_owners() in
// distribution.cpp delegates to a p x 1 TileMap.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace hetscale::dist {

/// An r x c arrangement of p ranks (r * c == p). Immutable once built.
class ProcessGrid {
 public:
  /// The squarest shape: r is the largest divisor of p with r <= sqrt(p)
  /// (so r <= c), ranks laid out row-major in rank order.
  static ProcessGrid squarest(int p);

  /// A p x 1 grid with rank i at grid row i — the degenerate shape that
  /// makes 2D tile math reproduce the 1D row distributions exactly.
  static ProcessGrid rows_only(int p);

  /// The squarest shape for speeds.size() ranks, with ranks placed to
  /// balance aggregate speed: each rank (fastest first) joins the grid row
  /// with the least speed so far, then within each row the columns are
  /// balanced the same way. Deterministic: ties go to the lower rank / the
  /// lower grid index.
  static ProcessGrid speed_balanced(std::span<const double> speeds);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int size() const { return rows_ * cols_; }

  /// World rank occupying the grid slot (grid_row, grid_col).
  int rank_at(int grid_row, int grid_col) const;
  int row_of(int rank) const;
  int col_of(int rank) const;

  /// World ranks of one grid row, in ascending grid-column order.
  std::vector<int> row_members(int grid_row) const;
  /// World ranks of one grid column, in ascending grid-row order.
  std::vector<int> col_members(int grid_col) const;

 private:
  ProcessGrid(int rows, int cols, std::vector<int> slot_rank);

  int rows_;
  int cols_;
  std::vector<int> slot_rank_;  ///< row-major slot -> world rank
  std::vector<int> row_of_;     ///< world rank -> grid row
  std::vector<int> col_of_;     ///< world rank -> grid col
};

/// One tile of a block-cyclic tiling: its global extent and owner.
struct Tile {
  std::int64_t tile_row = 0;  ///< tile coordinates (ti, tj)
  std::int64_t tile_col = 0;
  std::int64_t row0 = 0;  ///< first global row / column covered
  std::int64_t col0 = 0;
  std::int64_t rows = 0;  ///< extent; edge tiles are truncated
  std::int64_t cols = 0;
  int owner = 0;  ///< world rank owning the tile

  std::int64_t elements() const { return rows * cols; }
};

/// Block-cyclic 2D tiling of a rows x cols index space over a ProcessGrid.
/// Tile (ti, tj) is owned by the rank at grid slot (ti mod r, tj mod c).
class TileMap {
 public:
  TileMap(ProcessGrid grid, std::int64_t rows, std::int64_t cols,
          std::int64_t tile_rows, std::int64_t tile_cols);

  const ProcessGrid& grid() const { return grid_; }
  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }
  std::int64_t tile_rows() const { return tile_rows_; }
  std::int64_t tile_cols() const { return tile_cols_; }
  std::int64_t tile_row_count() const { return tile_row_count_; }
  std::int64_t tile_col_count() const { return tile_col_count_; }

  /// The tile at tile coordinates (ti, tj), extent truncated at the edges.
  Tile tile(std::int64_t ti, std::int64_t tj) const;
  /// Owner of tile (ti, tj) — grid.rank_at(ti mod r, tj mod c).
  int owner(std::int64_t ti, std::int64_t tj) const;
  /// Owner of the global element (gi, gj).
  int owner_of_index(std::int64_t gi, std::int64_t gj) const;

  /// Tile-relative address of a global element.
  struct Local {
    std::int64_t tile_row = 0;
    std::int64_t tile_col = 0;
    std::int64_t row = 0;  ///< offset inside the tile
    std::int64_t col = 0;
  };
  Local to_local(std::int64_t gi, std::int64_t gj) const;
  std::pair<std::int64_t, std::int64_t> to_global(const Local& local) const;

  /// All tiles owned by a world rank, in (tile_row, tile_col) lex order.
  std::vector<Tile> tiles_of(int rank) const;
  /// Elements owned per world rank; sums to rows() * cols() (tested).
  std::vector<std::int64_t> element_counts() const;

 private:
  ProcessGrid grid_;
  std::int64_t rows_;
  std::int64_t cols_;
  std::int64_t tile_rows_;
  std::int64_t tile_cols_;
  std::int64_t tile_row_count_;
  std::int64_t tile_col_count_;
};

/// Panel-exchange helpers: the tiles SUMMA broadcasts each step.
/// All tiles in one tile row (ascending tile_col) / one tile column
/// (ascending tile_row).
std::vector<Tile> row_panel(const TileMap& map, std::int64_t tile_row);
std::vector<Tile> col_panel(const TileMap& map, std::int64_t tile_col);

/// Modeled wire size of a panel: 8 bytes per double element.
double panel_bytes(std::span<const Tile> tiles);

}  // namespace hetscale::dist
