// Data distributions over heterogeneous processors.
//
// The paper's algorithms distribute rows "proportionally ... according to
// their marked speeds": GE uses the row-based *heterogeneous cyclic*
// distribution of Kalinov & Lastovetsky [6] (so each process's share of the
// remaining rows stays proportional to its speed at every elimination
// stage), and MM uses a row-based *heterogeneous block* distribution (HoHe).
// Homogeneous block/cyclic variants are provided for ablation baselines, as
// is the (simplified, row-based) column-tiling heuristic of Beaumont et
// al. [1].
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace hetscale::dist {

/// Heterogeneous block distribution: split n items into p contiguous blocks
/// with block i sized as close to n * speeds[i] / Σspeeds as integers allow
/// (largest-remainder rounding; ties go to the lower rank). Returns the p
/// block sizes; they sum to n exactly.
std::vector<std::int64_t> het_block_counts(std::span<const double> speeds,
                                           std::int64_t n);

/// Prefix offsets of a block distribution: offsets[i] is the first item of
/// block i; offsets[p] == n.
std::vector<std::int64_t> block_offsets(std::span<const std::int64_t> counts);

/// Heterogeneous cyclic distribution: owner[j] for each of the n items, with
/// items dealt one at a time to the processor that keeps assigned counts
/// proportional to speed (greedy proportional interleaving). Every prefix of
/// the deal is near-proportional — the property GE needs.
std::vector<int> het_cyclic_owners(std::span<const double> speeds,
                                   std::int64_t n);

/// Heterogeneous block-cyclic: the het_cyclic pattern of one round of
/// `round_size` items, tiled periodically over all n items (HoHe-style).
std::vector<int> het_block_cyclic_owners(std::span<const double> speeds,
                                         std::int64_t n,
                                         std::int64_t round_size);

/// Homogeneous block distribution of n items over p processors.
std::vector<std::int64_t> block_counts(int p, std::int64_t n);

/// Homogeneous (block-)cyclic owners with the given block size.
std::vector<int> cyclic_owners(int p, std::int64_t n,
                               std::int64_t block_size = 1);

/// Simplified Beaumont et al. column tiling for MM, restricted to one
/// dimension: identical to het_block_counts but kept as a named entry point
/// (see DESIGN.md substitutions).
std::vector<std::int64_t> column_tiling_counts(std::span<const double> speeds,
                                               std::int64_t n);

/// Load-balance quality of an assignment: (max_i count_i / speed_i) * C / n,
/// which is the ratio of the slowest processor's finish time to the ideal
/// perfectly proportional time. 1.0 is perfect; always >= 1 for n > 0.
double imbalance(std::span<const double> speeds,
                 std::span<const std::int64_t> counts);

/// Per-owner item counts of an owner map (p taken from speeds.size()).
std::vector<std::int64_t> counts_from_owners(std::span<const int> owners,
                                             std::size_t p);

}  // namespace hetscale::dist
